"""Command-line interface: run any of the paper's algorithms on
generated networks.

Examples::

    python -m repro decompose --family delaunay --n 200 --phi 0.05
    python -m repro maxis --family ktree --n 100 --eps 0.3
    python -m repro mwm --n 80 --max-weight 500 --iterations 4
    python -m repro test-property --property planar --far
    python -m repro ldd --algorithm thm15 --eps 0.25
    python -m repro triangles --family trigrid --n 100

Output discipline: tables and primary results go to **stdout** (so
``repro ... > results.txt`` captures exactly the deliverable), while
progress and diagnostic lines go through the ``repro`` logger to
**stderr** — tune them with ``--quiet`` / ``-v`` / ``--log-json``
(flags of the top-level ``repro`` command, before the subcommand).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from .analysis import Table
from .graph import Graph

#: Diagnostics channel: everything that is *about* a run rather than
#: its result.  Configured by :func:`main`; library importers who call
#: commands directly inherit logging's defaults.
log = logging.getLogger("repro")


class _JsonLogFormatter(logging.Formatter):
    """One JSON object per diagnostic line (for log collectors)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        return json.dumps(payload, sort_keys=True)


def _configure_logging(args) -> None:
    """(Re)wire the diagnostics channel for one CLI invocation.

    The handler is rebuilt around the *current* ``sys.stderr`` on every
    call — repeated in-process invocations (tests, notebooks) would
    otherwise keep writing to a stale, possibly closed stream.
    """
    if getattr(args, "quiet", False):
        level = logging.WARNING
    elif getattr(args, "verbose", 0):
        level = logging.DEBUG
    else:
        level = logging.INFO
    handler = logging.StreamHandler(sys.stderr)
    if getattr(args, "log_json", False):
        handler.setFormatter(_JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter("%(message)s"))
    log.handlers[:] = [handler]
    log.setLevel(level)
    log.propagate = False


def _build_graph(args) -> Graph:
    from . import generators

    n = args.n
    side = max(2, int(round(n ** 0.5)))
    if args.family == "delaunay":
        return generators.delaunay_planar_graph(n, seed=args.seed)
    if args.family == "grid":
        return generators.grid_graph(side, side)
    if args.family == "trigrid":
        return generators.triangulated_grid_graph(side, side)
    if args.family == "ktree":
        return generators.k_tree(n, 3, seed=args.seed)
    if args.family == "torus":
        return generators.toroidal_grid_graph(side, side)
    if args.family == "cycle":
        return generators.cycle_graph(n)
    raise SystemExit(f"unknown family {args.family!r}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="delaunay",
                        choices=["delaunay", "grid", "trigrid", "ktree",
                                 "torus", "cycle"],
                        help="graph family to generate")
    parser.add_argument("--n", type=int, default=100, help="vertex count")
    parser.add_argument("--eps", type=float, default=0.3,
                        help="approximation / budget parameter epsilon")
    parser.add_argument("--phi", type=float, default=None,
                        help="explicit conductance target (default: theory)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a structured per-round trace of every "
                             "CONGEST simulation to PATH as JSONL")
    parser.add_argument("--trace-detail", action="store_true",
                        help="with --trace, also record per-message "
                             "provenance events (trace schema v5) for "
                             "`repro trace explain`")


def _print_metrics(metrics) -> None:
    print("CONGEST:", metrics.summary())


def cmd_decompose(args) -> int:
    from .decomposition import expander_decomposition, verify_expander_decomposition

    g = _build_graph(args)
    dec = expander_decomposition(
        g, args.eps, phi=args.phi, seed=args.seed, enforce_budget=False
    )
    report = verify_expander_decomposition(dec)
    table = Table(
        f"expander decomposition of {args.family}({g.n})",
        ["cluster", "size", "certified phi"],
    )
    for i, (cluster, cert) in enumerate(zip(dec.clusters, dec.certificates)):
        table.add_row(i, len(cluster), cert)
    table.print()
    print(f"\ncut fraction: {report['cut_fraction']:.4f} (budget {dec.epsilon})")
    return 0


def cmd_maxis(args) -> int:
    from .independent_set import distributed_maxis, solve_maxis

    g = _build_graph(args)
    result = distributed_maxis(g, args.eps, phi=args.phi, seed=args.seed)
    best = len(solve_maxis(g))
    print(f"independent set: {result.size} (best known {best}, "
          f"ratio {result.size / max(1, best):.3f})")
    _print_metrics(result.framework.metrics)
    return 0


def cmd_mcm(args) -> int:
    from .matching import distributed_mcm_planar, max_cardinality_matching

    g = _build_graph(args)
    result, fw = distributed_mcm_planar(g, args.eps, phi=args.phi,
                                        seed=args.seed)
    opt = len(max_cardinality_matching(g))
    print(f"matching: {result.size} (optimum {opt}, "
          f"ratio {result.size / max(1, opt):.3f})")
    if fw is not None:
        _print_metrics(result.metrics())
    return 0


def cmd_mwm(args) -> int:
    from .generators import random_integer_weights
    from .matching import (
        distributed_mwm,
        matching_weight,
        max_weight_matching,
    )

    g = random_integer_weights(_build_graph(args), args.max_weight,
                               seed=args.seed)
    result = distributed_mwm(
        g, args.eps, iterations=args.iterations, phi=args.phi,
        seed=args.seed, enforce_budget=False,
    )
    opt = matching_weight(g, max_weight_matching(g))
    print(f"matching weight: {result.weight:.0f} (optimum {opt:.0f}, "
          f"ratio {result.weight / max(1.0, opt):.3f})")
    _print_metrics(result.metrics())
    return 0


def cmd_correlation(args) -> int:
    from .correlation import distributed_correlation_clustering
    from .generators import planted_signs

    g = _build_graph(args)
    signs, _ = planted_signs(g, args.communities, noise=args.noise,
                             seed=args.seed)
    result = distributed_correlation_clustering(
        g, signs, args.eps, phi=args.phi, seed=args.seed
    )
    print(f"agreement score: {result.score} of |E| = {g.m} "
          f"({result.score / max(1, g.m):.3f})")
    _print_metrics(result.framework.metrics)
    return 0


def cmd_mds(args) -> int:
    from .dominating_set import distributed_mds, solve_mds

    g = _build_graph(args)
    result = distributed_mds(g, args.eps, phi=args.phi, seed=args.seed)
    best = len(solve_mds(g))
    print(f"dominating set: {result.size} (best known {best}, "
          f"ratio {result.size / max(1, best):.3f})")
    _print_metrics(result.framework.metrics)
    return 0


def cmd_test_property(args) -> int:
    from .generators import complete_graph
    from .property_testing import (
        FOREST,
        OUTERPLANAR,
        PLANARITY,
        SERIES_PARALLEL,
        distributed_property_test,
    )

    properties = {
        "planar": PLANARITY,
        "forest": FOREST,
        "sp": SERIES_PARALLEL,
        "outerplanar": OUTERPLANAR,
    }
    prop = properties[args.property]
    if args.far:
        pattern = complete_graph(prop.forbidden_clique + 1)
        g = Graph()
        offset = 0
        for _ in range(max(2, args.n // pattern.n)):
            for v in pattern.vertices():
                g.add_vertex(v + offset)
            for u, v in pattern.edges():
                g.add_edge(u + offset, v + offset)
            offset += pattern.n
    else:
        g = _build_graph(args)
    result = distributed_property_test(g, prop, args.eps, seed=args.seed)
    verdict = "Accept" if result.accepted else "Reject"
    rejecters = sum(1 for ok in result.verdicts.values() if not ok)
    print(f"property {prop.name!r} on n={g.n}: {verdict} "
          f"({rejecters} rejecting vertices)")
    return 0 if result.accepted == (not args.far) else 1


def cmd_ldd(args) -> int:
    from .decomposition import (
        ball_carving_ldd,
        chop_ldd,
        mpx_ldd,
        theorem_1_5_ldd,
    )

    g = _build_graph(args)
    if args.algorithm == "thm15":
        ldd = theorem_1_5_ldd(g, args.eps, seed=args.seed)
    elif args.algorithm == "ball":
        ldd = ball_carving_ldd(g, args.eps, seed=args.seed)
    elif args.algorithm == "chop":
        ldd = chop_ldd(g, args.eps, seed=args.seed)
    else:
        ldd, _sim = mpx_ldd(g, args.eps, seed=args.seed)
    print(f"{args.algorithm}: {len(ldd.clusters)} clusters, "
          f"cut fraction {ldd.cut_fraction():.4f}, "
          f"max diameter {ldd.max_diameter()}")
    return 0


def cmd_bench(args) -> int:
    """Run experiment suites through the parallel cell runner."""
    import os
    import time

    from .runner import SUITES, run_suite, suite_names

    if args.no_kernels:
        # The env mirror makes the choice inherit into spawned workers.
        from .congest.algorithm import set_kernels_enabled

        set_kernels_enabled(False)
    if args.no_batch_delivery:
        from .congest.algorithm import set_batch_delivery_enabled

        set_batch_delivery_enabled(False)
    if args.faults:
        names = (args.suite or []) + ["E11", "E15"]
    else:
        names = args.suite or suite_names()
    # Hidden suites stay out of the default sweep but remain reachable
    # by explicit --suite NAME.
    unknown = [n for n in names if n not in SUITES]
    if unknown:
        raise SystemExit(
            f"unknown suite(s) {unknown}; available: {suite_names()}"
        )
    if args.journal and len(names) > 1:
        raise SystemExit(
            "--journal names one file and cannot span multiple suites; "
            "restrict the run with --suite NAME"
        )
    if args.trace_detail and not args.trace:
        log.error("--trace-detail requires --trace PATH")
        return 2
    if args.timeline and not args.telemetry:
        log.error("--timeline requires --telemetry PATH")
        return 2
    # Fail before the sweep, not after: a multi-minute run whose
    # deliverable cannot be written should not execute at all.
    for label, path in (
        ("trace", args.trace), ("telemetry", args.telemetry),
    ):
        if path:
            try:
                open(path, "w").close()
            except OSError as exc:
                log.error("invalid %s path: %s", label, exc)
                return 2
    if args.journal:
        # Probe without truncating: the journal may hold a resumable run.
        try:
            open(args.journal, "a").close()
        except OSError as exc:
            log.error("invalid journal path: %s", exc)
            return 2

    from .runner.progress import PROGRESS_SCHEMA_VERSION, ProgressLog

    plog = None
    if args.progress:
        try:
            plog = ProgressLog(args.progress)
        except OSError as exc:
            log.error("invalid progress path: %s", exc)
            return 2
        plog.emit(
            "bench_started",
            schema=PROGRESS_SCHEMA_VERSION,
            suites=list(names),
            jobs=args.jobs,
        )

    from .errors import JournalError, StorageError

    runs = []
    total_start = time.perf_counter()
    for name in names:
        try:
            run = run_suite(
                name,
                jobs=args.jobs,
                use_cache=args.cache,
                cache_root=args.cache_dir,
                mp_start=args.mp_start,
                limit=args.limit,
                trace=args.trace is not None,
                telemetry=args.telemetry is not None,
                cell_timeout=args.cell_timeout,
                retries=args.retries,
                journal=args.journal,
                resume=args.resume,
                trace_detail=args.trace_detail,
                timeline=args.timeline,
                progress=plog,
            )
        except JournalError as exc:
            # A journal that cannot prove its identity must not be
            # silently replayed or clobbered: operator decision needed.
            log.error("cannot resume: %s", exc)
            return 2
        runs.append(run)
        rendered = run.render_table() + "\n" + run.footer()
        print("\n" + rendered)
        if run.journal_path:
            log.info(
                "[%s] journal %s: %d cell(s) replayed, %d computed%s",
                name, run.journal_path, run.replayed_cells(),
                len(run.results) - run.replayed_cells(),
                (f", {run.journal_corrupt_lines} corrupt line(s) skipped"
                 if run.journal_corrupt_lines else ""),
            )
        if run.recovery.intervened or run.quarantined:
            r = run.recovery
            log.warning(
                "[%s] recovery: %d retries, %d timeouts, %d pool rebuilds",
                name, r.retries, r.timeouts, r.pool_rebuilds,
            )
        for q in run.quarantined:
            log.warning(
                "[%s] QUARANTINED %s after %d attempt(s): %s",
                name, q.label, q.attempts, q.reason,
            )
        stats = run.cache_stats()
        log.info(
            "[%s] cells=%d jobs=%d wall=%.3fs compute=%.3fs "
            "cache: %d mem hits, %d disk hits, %d misses, "
            "%d stores, %d corrupt%s",
            name, len(run.results), run.jobs, run.wall_seconds,
            run.compute_seconds(), stats["memory_hits"],
            stats["disk_hits"], stats["misses"], stats["stores"],
            stats["corrupt"], "" if args.cache else " (cache disabled)",
        )
        if args.out:
            from . import storage

            os.makedirs(args.out, exist_ok=True)
            try:
                storage.atomic_write_text(
                    os.path.join(args.out, f"{name}.txt"),
                    rendered + "\n",
                    verify=True,
                )
            except StorageError as exc:
                log.error("cannot write --out table: %s", exc)
                return 2
    total_wall = time.perf_counter() - total_start
    if plog is not None:
        plog.emit("bench_finished", wall_seconds=round(total_wall, 3))
        plog.close()

    if args.trace:
        from . import storage

        lines = [line for run in runs for line in run.trace_lines()]
        try:
            storage.atomic_write_text(
                args.trace,
                "\n".join(lines) + ("\n" if lines else ""),
                verify=True,
            )
        except StorageError as exc:
            log.error("cannot write trace: %s", exc)
            return 2
        log.info("trace: %d round records -> %s", len(lines), args.trace)
    if args.telemetry:
        from .obs import TelemetryRegistry, build_snapshot, write_snapshot

        registry = TelemetryRegistry()
        for run in runs:
            registry.merge_dict(run.merged_telemetry())
        snapshot = build_snapshot(
            suites={
                run.name: {
                    "wall_seconds": round(run.wall_seconds, 4),
                    "cells": {
                        r.label: {
                            "elapsed": round(r.elapsed, 6),
                            "attempts": r.attempts,
                        }
                        for r in run.results
                    },
                }
                for run in runs
            },
            telemetry=registry.to_dict(),
            jobs=args.jobs,
            cache_enabled=args.cache,
        )
        write_snapshot(args.telemetry, snapshot)
        log.info("telemetry snapshot -> %s", args.telemetry)
    if args.stats_json:
        payload = {
            "suites": [run.summary() for run in runs],
            "wall_seconds": round(total_wall, 4),
            "jobs": args.jobs,
            "cache_enabled": args.cache,
        }
        from . import storage

        try:
            storage.atomic_write_text(
                args.stats_json,
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                verify=True,
            )
        except StorageError as exc:
            log.error("cannot write stats: %s", exc)
            return 2
        log.info("stats -> %s", args.stats_json)
    return 1 if any(run.quarantined for run in runs) else 0


def _faults_resume(args, g) -> int:
    """Finish a ``repro faults`` run from a saved checkpoint.

    The checkpoint's own fault plan, configuration, and graph
    fingerprint are authoritative; any mismatch (or a corrupt file)
    surfaces as a clean one-line error with exit code 2.
    """
    from .congest.checkpoint import SimulationCheckpoint, resume_simulation
    from .errors import CheckpointError
    from .resilience import (
        Verdict,
        validate_independent_set,
        validate_matching,
    )

    if args.algorithm == "framework":
        log.error(
            "--resume-from supports --algorithm maxis or matching only"
        )
        return 2
    try:
        checkpoint = SimulationCheckpoint.load(args.resume_from)
    except CheckpointError as exc:
        log.error("corrupt checkpoint: %s", exc)
        return 2
    if args.algorithm == "maxis":
        from .independent_set.greedy import LubyMIS, luby_mis_max_phases

        max_phases = luby_mis_max_phases(g.n)
        factory = lambda v: LubyMIS(max_phases)  # noqa: E731
        max_rounds = 2 * max_phases + 4
    else:
        from .matching.distributed import (
            ProposalMatching,
            matching_max_phases,
        )

        max_phases = matching_max_phases(g.n)
        factory = lambda v: ProposalMatching(max_phases)  # noqa: E731
        max_rounds = 3 * max_phases + 6
    try:
        sim = resume_simulation(g, factory, checkpoint)
        result = sim.run(max_rounds=max_rounds)
    except CheckpointError as exc:
        log.error("cannot resume from checkpoint: %s", exc)
        return 2
    if args.algorithm == "maxis":
        mis = {v for v, in_mis in result.outputs.items() if in_mis}
        verdict = validate_independent_set(g, mis)
    else:
        from .matching.distributed import matching_from_outputs

        verdict = validate_matching(g, matching_from_outputs(result.outputs))
    if not result.halted:
        verdict = Verdict.stalled(
            f"not halted after {result.metrics.rounds} rounds"
        )
    print(f"resumed: {args.resume_from} from round {checkpoint.round}")
    _print_metrics(result.metrics)
    if result.metrics.faulted:
        print("faults:", result.metrics.fault_summary())
    print(f"verdict: {verdict.label()}"
          + (f" ({verdict.detail})" if verdict.detail else ""))
    return 0 if verdict.ok else 1


def cmd_faults(args) -> int:
    """Run one algorithm under an explicit fault plan and grade it."""
    from .congest import EdgeWindow, FaultPlan, PartitionWindow, use_faults
    from .resilience import (
        Verdict,
        validate_framework,
        validate_independent_set,
        validate_matching,
    )

    def parse_schedule(specs, flag):
        entries = []
        for spec in specs or []:
            try:
                vertex, round_number = spec.split(":", 1)
                entries.append((int(vertex), int(round_number)))
            except ValueError:
                raise SystemExit(
                    f"bad {flag} {spec!r}; expected VERTEX:ROUND"
                )
        return tuple(entries)

    def parse_edge_rounds(specs, flag):
        """``U-V:ROUND`` -> (u, v, round)."""
        entries = []
        for spec in specs or []:
            try:
                edge, round_number = spec.split(":", 1)
                u, v = edge.split("-", 1)
                entries.append((int(u), int(v), int(round_number)))
            except ValueError:
                raise SystemExit(
                    f"bad {flag} {spec!r}; expected U-V:ROUND"
                )
        return tuple(entries)

    def parse_edge_windows(specs):
        """``U-V:START-END`` -> EdgeWindow."""
        entries = []
        for spec in specs or []:
            try:
                edge, window = spec.split(":", 1)
                u, v = edge.split("-", 1)
                start, end = window.split("-", 1)
                entries.append(
                    EdgeWindow(int(u), int(v), int(start), int(end))
                )
            except ValueError:
                raise SystemExit(
                    f"bad --edge-up {spec!r}; expected U-V:START-END"
                )
        return tuple(entries)

    def parse_partitions(specs):
        """``START-END:V1,V2,...`` -> PartitionWindow isolating one
        block; every unlisted vertex lands in the implicit rest
        block."""
        entries = []
        for spec in specs or []:
            try:
                window, block = spec.split(":", 1)
                start, end = window.split("-", 1)
                vertices = tuple(
                    int(v) for v in block.split(",") if v.strip()
                )
                if not vertices:
                    raise ValueError("empty block")
                entries.append(
                    PartitionWindow((vertices,), int(start), int(end))
                )
            except ValueError:
                raise SystemExit(
                    f"bad --partition {spec!r}; "
                    "expected START-END:V1,V2,..."
                )
        return tuple(entries)

    from .errors import FaultError

    try:
        plan = FaultPlan(
            seed=args.fault_seed,
            drop=args.drop,
            duplicate=args.duplicate,
            corrupt=args.corrupt,
            crashes=parse_schedule(args.crash, "--crash"),
            rejoins=parse_schedule(args.rejoin, "--rejoin"),
            checkpoint_interval=args.checkpoint_interval,
            edge_arrivals=parse_edge_rounds(
                args.edge_arrive, "--edge-arrive"
            ),
            edge_departures=parse_edge_rounds(
                args.edge_depart, "--edge-depart"
            ),
            edge_up_windows=parse_edge_windows(args.edge_up),
            partitions=parse_partitions(args.partition),
            delay=args.delay,
            max_delay=args.max_delay,
        )
    except (FaultError, ValueError) as exc:
        # e.g. a rejoin without a matching crash, conflicting churn
        # schedules, or a rate out of range: operator error, not a
        # bug — report cleanly instead of dumping a traceback.
        log.error("invalid fault plan: %s", exc)
        return 2
    g = _build_graph(args)
    if args.resume_from:
        return _faults_resume(args, g)
    checkpoint_kwargs = {}
    saved_checkpoints = []
    if args.save_checkpoint:
        if args.algorithm == "framework":
            log.error(
                "--save-checkpoint supports --algorithm maxis or "
                "matching only"
            )
            return 2

        def _persist(checkpoint) -> None:
            from .errors import CheckpointError

            try:
                checkpoint.save(args.save_checkpoint)
            except CheckpointError as exc:
                log.error("cannot save checkpoint: %s", exc)
                raise SystemExit(2)
            saved_checkpoints.append(checkpoint.round)

        checkpoint_kwargs = {
            "checkpoint_every": args.checkpoint_every,
            "on_checkpoint": _persist,
        }
    metrics = None
    halted = True
    try:
        with use_faults(plan):
            if args.algorithm == "maxis":
                from .independent_set.greedy import luby_mis

                mis, result = luby_mis(
                    g, seed=args.seed, **checkpoint_kwargs
                )
                metrics = result.metrics
                halted = result.halted
                verdict = validate_independent_set(g, mis)
            elif args.algorithm == "matching":
                from .matching.distributed import (
                    distributed_maximal_matching,
                )

                matching, result = distributed_maximal_matching(
                    g, seed=args.seed, **checkpoint_kwargs
                )
                metrics = result.metrics
                halted = result.halted
                verdict = validate_matching(g, matching)
            else:
                from .core.framework import run_framework

                def _solver(sub, leader, notes):
                    return {v: sub.degree(v) for v in sub.vertices()}

                result = run_framework(
                    g, args.eps, solver=_solver, phi=args.phi,
                    seed=args.seed,
                )
                metrics = result.metrics
                verdict = validate_framework(result)
        if not halted:
            # The adversity (a long partition, sustained churn, heavy
            # delay) kept the protocol from terminating: grade the run
            # stalled rather than judging its partial output.
            verdict = Verdict.stalled(
                f"not halted after {metrics.rounds} rounds"
            )
    except Exception as exc:  # graded outcome, not a crash
        verdict = Verdict.failed(f"{type(exc).__name__}: {exc}")

    print(f"plan: drop={plan.drop} duplicate={plan.duplicate} "
          f"corrupt={plan.corrupt} crashes={len(plan.crashes)} "
          f"rejoins={len(plan.rejoins)} "
          f"churn={len(plan.edge_arrivals) + len(plan.edge_departures)}"
          f"+{len(plan.edge_up_windows)}w "
          f"partitions={len(plan.partitions)} delay={plan.delay} "
          f"seed={plan.seed}")
    if args.save_checkpoint:
        if saved_checkpoints:
            print(
                f"checkpoints: {len(saved_checkpoints)} saved to "
                f"{args.save_checkpoint} (last at round "
                f"{saved_checkpoints[-1]})"
            )
        else:
            log.warning(
                "no checkpoint captured: the run finished before round "
                "%d; lower --checkpoint-every", args.checkpoint_every,
            )
    if metrics is not None:
        _print_metrics(metrics)
        if metrics.faulted:
            print("faults:", metrics.fault_summary())
    print(f"verdict: {verdict.label()}"
          + (f" ({verdict.detail})" if verdict.detail else ""))
    return 0 if verdict.ok else 1


def cmd_chaos(args) -> int:
    """Torture the storage layer around real bench runs."""
    from .chaos import run_torture
    from .errors import ReproError

    try:
        report = run_torture(
            suite=args.suite,
            limit=args.limit,
            trials=args.trials,
            seed=args.chaos_seed,
            workdir=args.keep,
            progress=print,
        )
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    print(report.summary())
    if args.stats_json:
        report.save(args.stats_json)
        log.info("chaos report -> %s", args.stats_json)
    if not report.ok:
        log.error(
            "invariant violated: %d silent divergence(s), "
            "%d harness error(s)",
            report.silent_divergences, report.harness_errors,
        )
    return 0 if report.ok else 1


def cmd_obs_report(args) -> int:
    """Render a benchmark telemetry snapshot for humans or scrapers."""
    from .obs import (
        iter_events,
        load_snapshot,
        prometheus_text,
        render_report,
    )

    try:
        snapshot = load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        # A missing or mangled snapshot is an operator error, not a
        # bug: report it cleanly instead of dumping a traceback.
        log.error("cannot load snapshot %s: %s", args.snapshot, exc)
        return 2
    telemetry = snapshot.get("telemetry", {})
    if args.format == "prom":
        sys.stdout.write(prometheus_text(telemetry))
    elif args.format == "jsonl":
        for event in iter_events(telemetry):
            print(json.dumps(event, sort_keys=True))
    else:
        sys.stdout.write(render_report(telemetry, snapshot.get("suites")))
    return 0


def cmd_obs_diff(args) -> int:
    """Compare two telemetry snapshots against a perf budget."""
    from .obs import diff_snapshots, load_snapshot

    try:
        old = load_snapshot(args.old)
        new = load_snapshot(args.new)
    except (OSError, ValueError) as exc:
        log.error("cannot load snapshot: %s", exc)
        return 2
    diff = diff_snapshots(old, new, budget=args.budget,
                          min_seconds=args.min_seconds)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    if not diff.ok:
        log.warning(
            "perf budget exceeded: %d metric(s) regressed past %.2fx",
            len(diff.regressions), args.budget,
        )
        return 1
    return 0


def cmd_obs_export(args) -> int:
    """Export a snapshot's span timeline as a Chrome/Perfetto trace."""
    from .obs import (
        load_snapshot,
        timeline_from_snapshot,
        validate_chrome_trace,
        write_chrome_trace,
    )

    try:
        snapshot = load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        log.error("cannot load snapshot %s: %s", args.snapshot, exc)
        return 2
    timeline = timeline_from_snapshot(snapshot)
    if not timeline:
        log.error(
            "snapshot %s carries no timeline events; re-record with "
            "`repro bench --telemetry PATH --timeline`", args.snapshot,
        )
        return 2
    out = args.out
    if out is None:
        base = args.snapshot
        if base.endswith(".json"):
            base = base[:-len(".json")]
        out = base + ".trace.json"
    try:
        data = write_chrome_trace(timeline, out)
    except OSError as exc:
        log.error("invalid output path: %s", exc)
        return 2
    for problem in validate_chrome_trace(data):
        log.warning("trace-event issue: %s", problem)
    log.info(
        "chrome trace: %d event(s) -> %s "
        "(load in chrome://tracing or ui.perfetto.dev)",
        len(data["traceEvents"]), out,
    )
    print(out)
    return 0


def cmd_trace_diff(args) -> int:
    """Locate the first divergence between two round-trace files."""
    from .obs import diff_traces, load_trace_jsonl
    from .obs.trace import DEFAULT_IGNORE

    try:
        records_a = load_trace_jsonl(args.a)
        records_b = load_trace_jsonl(args.b)
    except (OSError, ValueError) as exc:
        log.error("cannot load trace: %s", exc)
        return 2
    ignore = tuple(args.ignore) if args.ignore else DEFAULT_IGNORE
    divergence = diff_traces(records_a, records_b, ignore=ignore)
    if args.json:
        payload = {
            "kind": "repro-trace-diff",
            "a": args.a,
            "b": args.b,
            "identical": divergence is None,
            "divergence": (
                divergence.to_dict() if divergence is not None else None
            ),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif divergence is None:
        print(f"traces identical: {args.a} == {args.b}")
    else:
        print(divergence.render())
    return 0 if divergence is None else 1


def cmd_trace_explain(args) -> int:
    """Per-vertex causal provenance from a schema-5 detail trace."""
    from .obs import explain_vertex, load_trace_jsonl

    try:
        records = load_trace_jsonl(args.trace_file)
    except (OSError, ValueError) as exc:
        log.error("cannot load trace: %s", exc)
        return 2
    try:
        report = explain_vertex(
            records, args.vertex, args.round,
            sim=args.sim, depth=args.depth,
        )
    except ValueError as exc:
        log.error("cannot explain: %s", exc)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.found else 1


def cmd_trace_tail(args) -> int:
    """Follow (or replay) a runner heartbeat written by --progress."""
    from .runner import (
        follow_progress,
        iter_progress,
        render_progress_event,
    )

    t0: Optional[float] = None
    read_stats: dict = {}
    try:
        if args.follow:
            events = follow_progress(
                args.progress_file, idle_timeout=args.idle_timeout
            )
        else:
            events = iter_progress(args.progress_file, stats=read_stats)
        for record in events:
            if args.json:
                print(json.dumps(record, sort_keys=True), flush=True)
            else:
                t = record.get("t")
                if t0 is None and isinstance(t, (int, float)):
                    t0 = t
                print(render_progress_event(record, t0), flush=True)
    except OSError as exc:
        log.error("cannot read progress file: %s", exc)
        return 2
    except KeyboardInterrupt:
        return 0
    if read_stats.get("skipped"):
        # A live writer's final line is routinely torn; say so instead
        # of silently rendering a shorter story than the file holds.
        log.warning(
            "%d truncated or corrupt line(s) skipped",
            read_stats["skipped"],
        )
    return 0


def cmd_triangles(args) -> int:
    from .subgraphs import distributed_triangle_listing, list_triangles

    g = _build_graph(args)
    found, framework, cut_metrics = distributed_triangle_listing(
        g, epsilon=args.eps, phi=args.phi, seed=args.seed
    )
    expected = list_triangles(g)
    status = "exact" if found == expected else "MISMATCH"
    print(f"triangles: {len(found)} listed ({status}); "
          f"{len(framework.decomposition.cut_edges)} cut edges handled")
    return 0 if found == expected else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Expander-decomposition CONGEST framework "
            "(Chang & Su, PODC 2022 reproduction)"
        ),
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more diagnostics on stderr (repeatable)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress diagnostics (warnings still shown); "
                             "tables and results stay on stdout")
    parser.add_argument("--log-json", action="store_true",
                        help="emit diagnostics as JSON lines on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    commands = {
        "decompose": cmd_decompose,
        "maxis": cmd_maxis,
        "mcm": cmd_mcm,
        "mwm": cmd_mwm,
        "correlation": cmd_correlation,
        "mds": cmd_mds,
        "test-property": cmd_test_property,
        "ldd": cmd_ldd,
        "triangles": cmd_triangles,
    }
    for name, handler in commands.items():
        p = sub.add_parser(name)
        _add_common(p)
        p.set_defaults(handler=handler)
        if name == "mwm":
            p.add_argument("--max-weight", type=int, default=100)
            p.add_argument("--iterations", type=int, default=3)
        if name == "correlation":
            p.add_argument("--communities", type=int, default=3)
            p.add_argument("--noise", type=float, default=0.1)
        if name == "test-property":
            p.add_argument("--property", default="planar",
                           choices=["planar", "forest", "sp", "outerplanar"])
            p.add_argument("--far", action="store_true",
                           help="test an epsilon-far instance instead")
        if name == "ldd":
            p.add_argument("--algorithm", default="thm15",
                           choices=["thm15", "ball", "chop", "mpx"])

    bench = sub.add_parser(
        "bench",
        help="run experiment suites through the parallel cell runner",
        description=(
            "Execute E-suite experiment grids as independent cells, "
            "optionally across worker processes and backed by the "
            "content-addressed artifact cache."
        ),
    )
    bench.add_argument("--suite", action="append", default=None,
                       metavar="NAME",
                       help="suite to run (repeatable; default: all)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes (<=1 runs in-process)")
    cache_group = bench.add_mutually_exclusive_group()
    cache_group.add_argument("--cache", dest="cache", action="store_true",
                             default=True,
                             help="memoize artifacts (default)")
    cache_group.add_argument("--no-cache", dest="cache",
                             action="store_false",
                             help="recompute everything")
    bench.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="artifact cache root "
                            "(default: benchmarks/.cache)")
    bench.add_argument("--mp-start", default=None,
                       choices=["fork", "spawn", "forkserver"],
                       help="multiprocessing start method "
                            "(default: fork if available, else spawn)")
    bench.add_argument("--limit", type=int, default=None, metavar="K",
                       help="run only the first K cells of each suite")
    bench.add_argument("--out", default=None, metavar="DIR",
                       help="also write each suite table to DIR/<suite>.txt")
    bench.add_argument("--stats-json", default=None, metavar="PATH",
                       help="write wall-clock + cache-hit stats as JSON")
    bench.add_argument("--trace", metavar="PATH", default=None,
                       help="write merged per-round JSONL traces of all "
                            "cells to PATH (bypasses the cell-result "
                            "cache tier)")
    bench.add_argument("--trace-detail", action="store_true",
                       help="with --trace, also record per-message "
                            "provenance events (trace schema v5) for "
                            "`repro trace explain`")
    bench.add_argument("--telemetry", metavar="PATH", default=None,
                       help="run cells with telemetry enabled and write "
                            "a schema-versioned perf snapshot to PATH "
                            "(see `repro obs diff`; bypasses the "
                            "cell-result cache tier)")
    bench.add_argument("--timeline", action="store_true",
                       help="with --telemetry, capture span begin/end "
                            "events so the snapshot can be exported as "
                            "a Chrome/Perfetto trace "
                            "(`repro obs export`)")
    bench.add_argument("--progress", metavar="PATH", default=None,
                       help="append flushed JSONL heartbeat events "
                            "(cell started/finished/retried/stalled) "
                            "to PATH; follow live with "
                            "`repro trace tail PATH --follow`")
    bench.add_argument("--faults", action="store_true",
                       help="include the E11 fault-tolerance suite "
                            "(shorthand for --suite E11)")
    bench.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill any cell attempt exceeding this "
                            "wall-clock budget (parallel runs only)")
    bench.add_argument("--retries", type=int, default=0, metavar="N",
                       help="extra attempts per failed cell before it "
                            "is quarantined (default: 0)")
    bench.add_argument("--journal", default=None, metavar="PATH",
                       help="write-ahead journal recording each "
                            "completed cell (single suite only; "
                            "default with --resume: "
                            "<cache-dir>/journals/<suite>.jsonl)")
    bench.add_argument("--resume", action="store_true",
                       help="replay cells already completed in the "
                            "journal of an interrupted run instead of "
                            "recomputing them")
    bench.add_argument("--no-kernels", action="store_true",
                       help="disable the columnar round kernels and "
                            "run every CONGEST cell on the scalar "
                            "per-vertex path (results are bit-identical"
                            "; see docs/kernels.md)")
    bench.add_argument("--no-batch-delivery", action="store_true",
                       help="keep kernels but deliver their messages "
                            "through the scalar per-context outboxes "
                            "instead of columnar send plans (results "
                            "are bit-identical; see docs/kernels.md)")
    bench.set_defaults(handler=cmd_bench)

    faults = sub.add_parser(
        "faults",
        help="run one algorithm under an explicit fault plan",
        description=(
            "Inject deterministic message/vertex faults into a single "
            "run and grade the outcome (correct / degraded / failed)."
        ),
    )
    _add_common(faults)
    faults.add_argument("--algorithm", default="maxis",
                        choices=["maxis", "matching", "framework"],
                        help="which algorithm to subject to faults")
    faults.add_argument("--drop", type=float, default=0.0,
                        help="per-message drop probability")
    faults.add_argument("--duplicate", type=float, default=0.0,
                        help="per-message duplication probability")
    faults.add_argument("--corrupt", type=float, default=0.0,
                        help="per-message corruption probability")
    faults.add_argument("--crash", action="append", default=None,
                        metavar="VERTEX:ROUND",
                        help="fail-stop a vertex at a round (repeatable)")
    faults.add_argument("--rejoin", action="append", default=None,
                        metavar="VERTEX:ROUND",
                        help="revive a crashed vertex at a round "
                             "(repeatable; requires a --crash for the "
                             "same vertex at an earlier round)")
    faults.add_argument("--checkpoint-interval", type=int, default=None,
                        metavar="ROUNDS",
                        help="rejoining vertices restore from a local "
                             "snapshot taken every ROUNDS executed "
                             "steps (default: re-initialize fresh)")
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the deterministic fault stream")
    faults.add_argument("--edge-arrive", action="append", default=None,
                        metavar="U-V:ROUND",
                        help="edge (u, v) only exists from ROUND on "
                             "(repeatable; topology churn)")
    faults.add_argument("--edge-depart", action="append", default=None,
                        metavar="U-V:ROUND",
                        help="edge (u, v) disappears at ROUND "
                             "(repeatable; topology churn)")
    faults.add_argument("--edge-up", action="append", default=None,
                        metavar="U-V:START-END",
                        help="edge (u, v) is only up during rounds "
                             "[START, END] (repeatable)")
    faults.add_argument("--partition", action="append", default=None,
                        metavar="START-END:V1,V2,...",
                        help="isolate the listed vertices from the "
                             "rest of the network during rounds "
                             "[START, END], then heal (repeatable)")
    faults.add_argument("--delay", type=float, default=0.0,
                        help="per-message delay probability "
                             "(delayed messages arrive 1..MAX rounds "
                             "late, deterministically)")
    faults.add_argument("--max-delay", type=int, default=1,
                        help="upper bound on extra delivery rounds "
                             "for delayed messages (default: 1)")
    faults.add_argument("--save-checkpoint", default=None, metavar="PATH",
                        help="persist a durable simulation checkpoint "
                             "to PATH every --checkpoint-every rounds "
                             "(maxis/matching only; atomic, "
                             "checksummed — see docs/durability.md)")
    faults.add_argument("--checkpoint-every", type=int, default=8,
                        metavar="ROUNDS",
                        help="checkpoint capture interval for "
                             "--save-checkpoint (default: 8)")
    faults.add_argument("--resume-from", default=None, metavar="PATH",
                        help="finish an interrupted run from a saved "
                             "checkpoint instead of starting one; the "
                             "checkpoint's own fault plan and graph "
                             "fingerprint are authoritative, and a "
                             "corrupt or mismatched file exits 2")
    faults.set_defaults(handler=cmd_faults)

    chaos = sub.add_parser(
        "chaos",
        help="torture the storage layer with kill-points and disk faults",
        description=(
            "Run a seeded sweep of crash-consistency trials: real "
            "`repro bench` subprocesses under deterministic disk "
            "faults (torn writes, dropped fsyncs, bit-flips, ENOSPC, "
            "kill-points), each recovered by resume or recompute and "
            "compared byte-for-byte against a clean baseline.  Exits "
            "nonzero on any silent divergence (docs/durability.md)."
        ),
    )
    chaos.add_argument("--suite", default="E10", metavar="NAME",
                       help="suite to torture (default: E10)")
    chaos.add_argument("--limit", type=int, default=2, metavar="K",
                       help="cells per bench run (default: 2)")
    chaos.add_argument("--trials", type=int, default=8, metavar="N",
                       help="fault-schedule trials to run (default: 8; "
                            "the acceptance sweep uses 50+)")
    chaos.add_argument("--seed", type=int, default=0, dest="chaos_seed",
                       help="sweep seed; every fault decision is a "
                            "pure function of it (default: 0)")
    chaos.add_argument("--keep", default=None, metavar="DIR",
                       help="run inside DIR and keep all artifacts "
                            "(default: a temp dir, removed afterwards)")
    chaos.add_argument("--stats-json", default=None, metavar="PATH",
                       help="write the full chaos report (per-trial "
                            "outcomes + injected/recovered/loud "
                            "counts) as JSON")
    chaos.set_defaults(handler=cmd_chaos)

    obs = sub.add_parser(
        "obs",
        help="inspect and compare telemetry snapshots",
        description=(
            "Work with the perf snapshots written by "
            "`repro bench --telemetry PATH`."
        ),
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="render a snapshot's telemetry"
    )
    report.add_argument("snapshot", help="snapshot JSON file")
    report.add_argument("--format", default="table",
                        choices=["table", "prom", "jsonl"],
                        help="table (default), Prometheus text "
                             "exposition, or JSONL events")
    report.set_defaults(handler=cmd_obs_report)
    diff = obs_sub.add_parser(
        "diff", help="compare two snapshots against a perf budget"
    )
    diff.add_argument("old", help="baseline snapshot JSON file")
    diff.add_argument("new", help="candidate snapshot JSON file")
    diff.add_argument("--budget", type=float, default=1.25,
                      help="max allowed new/old timing ratio "
                           "(default: 1.25)")
    diff.add_argument("--min-seconds", type=float, default=0.005,
                      help="ignore regressions smaller than this many "
                           "absolute seconds (default: 0.005)")
    diff.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout "
                           "(regressed paths, ratios, budget)")
    diff.set_defaults(handler=cmd_obs_diff)
    export = obs_sub.add_parser(
        "export",
        help="export a snapshot's span timeline for Chrome/Perfetto",
    )
    export.add_argument("snapshot", help="snapshot JSON file written by "
                                         "`repro bench --telemetry PATH "
                                         "--timeline`")
    export.add_argument("--format", default="chrome", choices=["chrome"],
                        help="output format (chrome trace-event JSON, "
                             "loadable in chrome://tracing and "
                             "ui.perfetto.dev)")
    export.add_argument("--out", metavar="PATH", default=None,
                        help="output file (default: snapshot path with "
                             ".trace.json suffix)")
    export.set_defaults(handler=cmd_obs_export)

    trace = sub.add_parser(
        "trace",
        help="diff, explain, and follow structured round traces",
        description=(
            "Work with the per-round JSONL traces written by --trace "
            "(and the heartbeat files written by bench --progress): "
            "locate the first divergence between two runs, explain one "
            "vertex's message provenance, or tail a live run."
        ),
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tdiff = trace_sub.add_parser(
        "diff",
        help="first divergence between two trace files",
    )
    tdiff.add_argument("a", help="baseline trace JSONL file")
    tdiff.add_argument("b", help="candidate trace JSONL file")
    tdiff.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    tdiff.add_argument("--ignore", action="append", default=None,
                       metavar="FIELD",
                       help="ignore a record field (repeatable; "
                            "default: sim, schema)")
    tdiff.set_defaults(handler=cmd_trace_diff)
    texplain = trace_sub.add_parser(
        "explain",
        help="per-vertex message provenance for one round",
    )
    texplain.add_argument("trace_file", metavar="TRACE",
                          help="trace JSONL recorded with --trace-detail")
    texplain.add_argument("--vertex", required=True,
                          help="vertex to explain (as it appears in "
                               "events, e.g. 7)")
    texplain.add_argument("--round", type=int, required=True,
                          help="executed round number")
    texplain.add_argument("--sim", default=None, metavar="NAME",
                          help="simulation stream to inspect (label or "
                               "unique substring; default: the only "
                               "stream)")
    texplain.add_argument("--depth", type=int, default=0, metavar="N",
                          help="also chase N levels of upstream senders "
                               "through earlier rounds")
    texplain.add_argument("--json", action="store_true",
                          help="machine-readable report on stdout")
    texplain.set_defaults(handler=cmd_trace_explain)
    ttail = trace_sub.add_parser(
        "tail",
        help="render (or follow) a bench --progress heartbeat file",
    )
    ttail.add_argument("progress_file", metavar="PROGRESS",
                       help="heartbeat JSONL written by bench --progress")
    ttail.add_argument("--follow", action="store_true",
                       help="keep reading as the run appends "
                            "(tail -f semantics; stops at "
                            "bench_finished)")
    ttail.add_argument("--idle-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="with --follow, stop after this long with "
                            "no new events (default: follow until "
                            "interrupted)")
    ttail.add_argument("--json", action="store_true",
                       help="raw JSONL passthrough instead of rendered "
                            "lines")
    ttail.set_defaults(handler=cmd_trace_tail)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    # `bench` manages tracing itself (per-cell sessions merged across
    # worker processes); the session wrapper below is for the
    # single-simulation commands.
    if getattr(args, "trace", None) and args.command != "bench":
        from .congest import TraceSession

        try:
            # Fail before the run, not after: a long simulation whose
            # trace cannot be written should not execute at all.
            open(args.trace, "w").close()
        except OSError as exc:
            log.error("invalid trace path: %s", exc)
            return 2
        detail = getattr(args, "trace_detail", False)
        with TraceSession(detail=detail) as session:
            code = args.handler(args)
        session.write_jsonl(args.trace)
        recorded = sum(len(rec.rounds) for rec in session.recorders)
        log.info(
            "trace: %d simulations, %d recorded rounds (%d simulated) -> %s",
            len(session.recorders), recorded, session.total_rounds(),
            args.trace,
        )
        return code
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
