"""Distributed property testing (Theorem 1.4 / Section 3.4).

Tests any minor-closed, disjoint-union-closed graph property in the
CONGEST model with one-sided error: graphs with the property are always
accepted; graphs epsilon-far from it are rejected by at least one
vertex (with high probability over the framework's randomness).
"""

from .properties import (
    FOREST,
    OUTERPLANAR,
    PLANARITY,
    SERIES_PARALLEL,
    GraphProperty,
)
from .tester import PropertyTestResult, distributed_property_test

__all__ = [
    "GraphProperty",
    "PLANARITY",
    "OUTERPLANAR",
    "SERIES_PARALLEL",
    "FOREST",
    "PropertyTestResult",
    "distributed_property_test",
]
