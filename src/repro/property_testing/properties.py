"""Minor-closed, union-closed graph properties with exact checkers.

Theorem 1.4 applies to any graph property that is (a) minor-closed and
(b) closed under disjoint union.  Each :class:`GraphProperty` bundles
an exact membership checker (run by cluster leaders on their gathered
topology) with the parameter the tester derives from the property: the
smallest s such that K_s lacks the property, which determines the
excluded minor H = K_s the framework assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph import Graph
from ..minors import is_forest, is_outerplanar, is_planar, is_series_parallel


@dataclass(frozen=True)
class GraphProperty:
    """A testable property.

    ``holds``
        Exact sequential membership check ("any sequential algorithm"
        at the leader).
    ``forbidden_clique``
        The smallest s with K_s not in the property; the tester runs
        the framework under the assumption that the network is
        K_s-minor-free.
    """

    name: str
    holds: Callable[[Graph], bool]
    forbidden_clique: int

    def __repr__(self) -> str:
        return f"GraphProperty({self.name!r}, s={self.forbidden_clique})"


#: Planarity: K_5 is the smallest non-planar clique.
PLANARITY = GraphProperty("planar", is_planar, forbidden_clique=5)

#: Outerplanarity: K_4 is not outerplanar.
OUTERPLANAR = GraphProperty("outerplanar", is_outerplanar, forbidden_clique=4)

#: Series-parallel (treewidth <= 2): K_4 is the forbidden clique.
SERIES_PARALLEL = GraphProperty(
    "series-parallel", is_series_parallel, forbidden_clique=4
)

#: Forests: K_3 is the smallest clique with a cycle.
FOREST = GraphProperty("forest", is_forest, forbidden_clique=3)
