"""The Theorem 1.4 property tester.

Algorithm (Section 3.4, verbatim): run the Theorem 2.6 machinery under
the assumption that the network is K_s-minor-free (s = the property's
forbidden clique size), with failures allowed.  Then each cluster
decides:

* gathering succeeded → the leader checks the property on the exact
  topology of G[V_i]; the whole cluster Accepts or Rejects accordingly;
* gathering failed because the Lemma 2.3 degree condition
  deg(v*) = Omega(phi^2)|E_i| is violated → Reject (the violation
  certifies the network is not K_s-minor-free, hence not in the
  property);
* gathering failed for any other (1/poly(n)-probability) reason →
  Accept, preserving one-sided error.

Soundness: when G is epsilon-far from the property, the graph left
after deleting the <= epsilon |E| inter-cluster edges still lacks the
property; being the disjoint union of the clusters, and the property
being union-closed, some cluster must lack it — and that cluster's
leader holds its exact topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.framework import FrameworkResult, partition_minor_free
from ..errors import SolverError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng
from .properties import GraphProperty


@dataclass
class PropertyTestResult:
    """Per-vertex verdicts plus the execution record."""

    property_name: str
    verdicts: Dict[Any, bool]  # vertex -> True (Accept) / False (Reject)
    framework: Optional[FrameworkResult]
    cluster_verdicts: Dict[int, str] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        """Global outcome: Accept iff every vertex accepts."""
        return all(self.verdicts.values())


def distributed_property_test(
    graph: Graph,
    prop: GraphProperty,
    epsilon: float,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> PropertyTestResult:
    """Test ``prop`` on ``graph`` with proximity parameter ``epsilon``."""
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)

    verdicts: Dict[Any, bool] = {}
    cluster_verdicts: Dict[int, str] = {}

    # The framework must not abort on non-minor-free inputs: budget
    # enforcement is off, and all failure handling is per Section 2.3.
    framework = partition_minor_free(
        graph,
        epsilon,
        phi=phi,
        seed=rng.getrandbits(64),
        solver=None,
        enforce_budget=False,
    )

    for run in framework.clusters:
        if not run.degree_condition_ok:
            # Certificate that G is not K_s-minor-free: Reject.
            verdict = "reject:degree-condition"
            accept = False
        elif not run.gather.success or run.gather.gathered is None:
            # Routing failed for a low-probability reason: Accept
            # (one-sided error).
            verdict = "accept:routing-failure"
            accept = True
        else:
            has_property = prop.holds(run.gather.gathered)
            verdict = "accept:checked" if has_property else "reject:checked"
            accept = has_property
        cluster_verdicts[run.index] = verdict
        for v in run.vertices:
            verdicts[v] = accept

    return PropertyTestResult(
        property_name=prop.name,
        verdicts=verdicts,
        framework=framework,
        cluster_verdicts=cluster_verdicts,
    )
