"""Plain-text result tables for the benchmark harness.

The paper has no tables or figures of its own (it is pure theory), so
each experiment prints its series in this uniform format and
EXPERIMENTS.md records the expectation-vs-measurement verdicts.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_ratio(value: float, digits: int = 3) -> str:
    """Render an approximation ratio compactly."""
    return f"{value:.{digits}f}"


class Table:
    """Minimal aligned-column table with a title."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([self._render(v) for v in values])

    @staticmethod
    def _render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())
