"""Reporting helpers for the benchmark harness."""

from .reporting import Table, format_ratio

__all__ = ["Table", "format_ratio"]
