"""Distributed (1 + epsilon)-approximate MDS via the framework (extension).

The union of per-cluster minimum dominating sets dominates the whole
graph (every vertex is dominated *within its own cluster*), and
restricting an optimal D* to a cluster plus one endpoint per incident
cut edge dominates that cluster — so

    |D| = sum_i gamma(G[V_i]) <= |D*| + 2 * (#inter-cluster edges).

With the framework's epsilon' * min(n, m) cut bound this is a
(1 + epsilon)-approximation whenever gamma(G) = Omega(n), which holds
on bounded-degree networks (gamma >= n / (Delta + 1)); the framework
parameter is set accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..core.framework import FrameworkResult, run_framework
from ..errors import SolverError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng
from .exact import solve_mds
from .util import is_dominating_set


@dataclass
class DistributedMDSResult:
    """The dominating set plus its execution record."""

    dominating_set: Set
    epsilon: float
    framework: FrameworkResult

    @property
    def size(self) -> int:
        return len(self.dominating_set)


def distributed_mds(
    graph: Graph,
    epsilon: float,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> DistributedMDSResult:
    """(1 + epsilon)-approximate MDS on bounded-degree minor-free networks."""
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)

    # gamma(G) >= n / (Delta + 1): scale the cut budget so that
    # 2 * cut <= epsilon * gamma(G).
    delta = max(1, graph.max_degree())
    epsilon_prime = epsilon / (2.0 * (delta + 1.0))

    def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
        chosen = solve_mds(sub)
        return {v: (1 if v in chosen else 0) for v in sub.vertices()}

    framework = run_framework(
        graph,
        epsilon_prime,
        solver=solver,
        phi=phi,
        seed=rng.getrandbits(64),
    )
    dominating = {v for v, take in framework.answers.items() if take == 1}
    if not is_dominating_set(graph, dominating):
        raise SolverError("distributed MDS produced a non-dominating set")
    return DistributedMDSResult(
        dominating_set=dominating,
        epsilon=epsilon,
        framework=framework,
    )
