"""Dominating-set validators."""

from __future__ import annotations

from typing import Iterable, Set

from ..graph import Graph


def is_dominating_set(graph: Graph, candidate: Iterable) -> bool:
    """Is every vertex in the candidate set or adjacent to one?"""
    chosen = set(candidate)
    if not chosen <= set(graph.vertices()):
        return False
    for v in graph.vertices():
        if v in chosen:
            continue
        if not any(u in chosen for u in graph.neighbors(v)):
            return False
    return True
