"""Minimum dominating set (extension).

The paper's related-work section traces a line of LOCAL-model
(1 + epsilon)-approximations for minimum dominating set on planar and
bounded-genus networks (Czygrinow et al. [25-31]) and presents its
framework as the opportunity to move that line to CONGEST.  This
package does exactly that move: an exact branch-and-bound MDS solver
(run at cluster leaders), the ln-n greedy baseline, and the
framework-based distributed algorithm.

Approximation note: the union-of-cluster-optima argument gives
|D| <= |D*| + 2 * (#inter-cluster edges), so the (1 + epsilon) ratio is
guaranteed whenever gamma(G) = Omega(n) — e.g. on bounded-degree
minor-free networks (gamma >= n / (Delta + 1)).  Unlike matching
(Lemma 3.1), no local preprocessing can enforce gamma = Omega(n) in
general (a star has gamma = 1), so experiment E13 reports measured
ratios on bounded-degree families, where the guarantee applies.
"""

from .exact import exact_mds, solve_mds
from .greedy import greedy_mds
from .distributed import DistributedMDSResult, distributed_mds
from .util import is_dominating_set

__all__ = [
    "exact_mds",
    "solve_mds",
    "greedy_mds",
    "DistributedMDSResult",
    "distributed_mds",
    "is_dominating_set",
]
