"""Exact minimum dominating set by branch and bound.

Standard scheme: pick an undominated vertex v (one of its closed
neighbors must be chosen) and branch over the candidates in N[v],
ordered by coverage.  The greedy solution seeds the incumbent, and a
coverage bound (remaining undominated / (Delta + 1)) prunes.  Sized for
the cluster-scale sparse graphs the framework produces, with a node
budget and a greedy fallback wrapper (:func:`solve_mds`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import SolverError
from ..graph import Graph
from .greedy import greedy_mds

#: Default search budget (branch nodes) before giving up.
DEFAULT_NODE_BUDGET = 500_000


class _MDSSearch:
    def __init__(self, graph: Graph, budget: int) -> None:
        self.graph = graph
        self.closed: Dict = {
            v: {v, *graph.neighbors(v)} for v in graph.vertices()
        }
        self.budget = budget
        self.nodes = 0
        self.best: Set = set(graph.vertices())

    def run(self) -> Set:
        incumbent = greedy_mds(self.graph)
        self.best = set(incumbent)
        self._search(set(), set(self.graph.vertices()))
        return self.best

    def _search(self, chosen: Set, undominated: Set) -> None:
        self.nodes += 1
        if self.nodes > self.budget:
            raise SolverError("exact MDS exceeded its node budget")
        if not undominated:
            if len(chosen) < len(self.best):
                self.best = set(chosen)
            return
        if len(chosen) + 1 >= len(self.best):
            return  # even one more vertex cannot beat the incumbent
        # Coverage bound: each added vertex dominates <= Delta + 1.
        max_cover = max(
            len(self.closed[v] & undominated) for v in self.graph.vertices()
        )
        lower = (len(undominated) + max_cover - 1) // max_cover
        if len(chosen) + lower >= len(self.best):
            return

        # Branch on the undominated vertex with the fewest candidates.
        v = min(undominated, key=lambda u: len(self.closed[u]))
        candidates = sorted(
            self.closed[v],
            key=lambda u: -len(self.closed[u] & undominated),
        )
        for u in candidates:
            self._search(chosen | {u}, undominated - self.closed[u])


def exact_mds(graph: Graph, node_budget: int = DEFAULT_NODE_BUDGET) -> Set:
    """Compute a minimum dominating set; raises on budget exhaustion."""
    if graph.n == 0:
        return set()
    result = _MDSSearch(graph, node_budget).run()
    from .util import is_dominating_set

    if not is_dominating_set(graph, result):
        raise SolverError("internal error: produced a non-dominating set")
    return result


def solve_mds(graph: Graph, node_budget: int = 100_000) -> Set:
    """Exact MDS when affordable, greedy otherwise (the leaders' solver)."""
    try:
        return exact_mds(graph, node_budget=node_budget)
    except SolverError:
        return greedy_mds(graph)
