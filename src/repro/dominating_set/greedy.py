"""Greedy minimum dominating set (the ln-n baseline)."""

from __future__ import annotations

from typing import Set

from ..graph import Graph


def greedy_mds(graph: Graph) -> Set:
    """Repeatedly take the vertex covering the most undominated vertices.

    The classic (ln n + 1)-approximation for set cover specialized to
    domination; used both as the experiment baseline and as the initial
    incumbent of the exact branch and bound.
    """
    undominated = set(graph.vertices())
    chosen: Set = set()
    while undominated:
        best = None
        best_cover = -1
        for v in graph.vertices():
            cover = (1 if v in undominated else 0) + sum(
                1 for u in graph.neighbors(v) if u in undominated
            )
            if cover > best_cover:
                best_cover = cover
                best = v
        chosen.add(best)
        undominated.discard(best)
        undominated -= set(graph.neighbors(best))
    return chosen
