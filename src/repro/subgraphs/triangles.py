"""Triangle listing, centralized and distributed.

Centralized: the classic degeneracy-orientation algorithm — orient
edges along a degeneracy order, then check each vertex's out-neighbor
pairs; O(m * d) time on d-degenerate graphs, so linear-ish on
minor-free inputs.

Distributed: the framework lists every triangle whose three vertices
share a cluster (the leader holds the exact topology of G[V_i]); a
triangle crossing clusters contains at least one inter-cluster edge, so
a second phase lets each cut-edge endpoint stream its neighbor list to
its partner, one ID per round per edge — the endpoint then sees every
triangle through that edge.  On minor-free networks both the number of
cut edges (<= eps * min(n, m)) and the degrees are small, which is what
keeps this exchange cheap; this replaces the dense-graph recursion of
Chang-Pettie-Saranurak-Zhang, which exists to handle the regimes sparse
networks never enter.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..congest import CongestMetrics
from ..core.framework import FrameworkResult, partition_minor_free
from ..errors import SolverError
from ..graph import Graph, edge_key
from ..minors import greedy_orientation
from ..rng import SeedLike, ensure_rng

Triangle = FrozenSet


def list_triangles(graph: Graph) -> Set[Triangle]:
    """All triangles of ``graph`` via degeneracy orientation."""
    out = greedy_orientation(graph)
    triangles: Set[Triangle] = set()
    for v in graph.vertices():
        targets = out[v]
        for i, a in enumerate(targets):
            for b in targets[i + 1:]:
                if graph.has_edge(a, b):
                    triangles.add(frozenset((v, a, b)))
    return triangles


def count_triangles(graph: Graph) -> int:
    """Number of triangles in ``graph``."""
    return len(list_triangles(graph))


def distributed_triangle_listing(
    graph: Graph,
    epsilon: float = 0.3,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> Tuple[Set[Triangle], FrameworkResult, CongestMetrics]:
    """List all triangles distributedly; returns (triangles, framework,
    cut-phase metrics).

    Phase 1 (framework): each leader lists the triangles inside its
    gathered cluster topology.  The listing itself stays at the leader
    (listing output is not a per-vertex O(log n)-bit answer); vertices
    receive only an acknowledgement.

    Phase 2 (cut edges): for each inter-cluster edge {u, v}, u streams
    its neighbor IDs to v one per round; v reports every common
    neighbor as a triangle.  The phase costs max-degree rounds and one
    message per (cut edge, neighbor) pair, which the returned metrics
    account.
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)

    found: Set[Triangle] = set()

    def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
        for triangle in list_triangles(sub):
            found.add(triangle)
        return {v: 1 for v in sub.vertices()}

    framework = partition_minor_free(
        graph,
        epsilon,
        phi=phi,
        seed=rng.getrandbits(64),
        solver=solver,
        enforce_budget=False,
    )

    # Phase 2: neighbor-list streaming across cut edges.  Each cut edge
    # {u, v} carries deg(u) + deg(v) messages of one ID each, all edges
    # in parallel; rounds = the maximum endpoint degree.
    cut_metrics = CongestMetrics()
    max_rounds = 0
    messages = 0
    bits_per_id = max(4, (graph.n + 1).bit_length()) + 3
    for u, v in framework.decomposition.cut_edges:
        neighbors_u = set(graph.neighbors(u))
        neighbors_v = set(graph.neighbors(v))
        for w in neighbors_u & neighbors_v:
            found.add(frozenset((u, v, w)))
        max_rounds = max(max_rounds, len(neighbors_u), len(neighbors_v))
        messages += len(neighbors_u) + len(neighbors_v)
    cut_metrics.rounds = max_rounds
    cut_metrics.effective_rounds = max_rounds
    cut_metrics.total_messages = messages
    cut_metrics.total_bits = messages * bits_per_id
    cut_metrics.max_message_bits = bits_per_id if messages else 0
    cut_metrics.max_edge_congestion = 1 if messages else 0

    return found, framework, cut_metrics
