"""Subgraph finding (extension).

The first application of distributed expander decompositions was
triangle listing (Chang-Pettie-Saranurak-Zhang, discussed in the
paper's Section 1.4).  This package reproduces that lineage in the
sparse-network setting: exact centralized triangle counting/listing via
degeneracy orientation, and a distributed listing algorithm that uses
the Theorem 2.6 framework for intra-cluster triangles and a direct
neighbor-list exchange across the few inter-cluster edges.
"""

from .triangles import (
    count_triangles,
    distributed_triangle_listing,
    list_triangles,
)

__all__ = [
    "count_triangles",
    "distributed_triangle_listing",
    "list_triangles",
]
