"""Resilience layer: reliable transport + post-run result validation.

Companion to :mod:`repro.congest.faults`.  The faults module breaks
the network; this package provides the two tools an experiment needs
on the other side of the breakage:

* :class:`ReliableAlgorithm` / :func:`reliable` — an ack/retransmit
  wrapper giving any vertex algorithm lossless semantics over a lossy
  channel (at a measurable round/message cost);
* the ``validate_*`` functions and :class:`Verdict` — independent
  re-checks grading each faulted run ``correct`` / ``degraded(ratio)``
  / ``failed`` for the E11 fault-tolerance tables.
"""

from .transport import ReliableAlgorithm, reliable
from .validators import (
    CORRECT,
    DEGRADED,
    FAILED,
    STALLED,
    Verdict,
    validate_decomposition,
    validate_framework,
    validate_independent_set,
    validate_matching,
)

__all__ = [
    "ReliableAlgorithm",
    "reliable",
    "Verdict",
    "CORRECT",
    "DEGRADED",
    "FAILED",
    "STALLED",
    "validate_decomposition",
    "validate_framework",
    "validate_independent_set",
    "validate_matching",
]
