"""Reliable transport over a faulty CONGEST channel.

:class:`ReliableAlgorithm` wraps any :class:`VertexAlgorithm` in an
ack/retransmit protocol so that the wrapped algorithm sees a lossless
(but higher-latency) network even when the simulator is injecting
message faults (:mod:`repro.congest.faults`):

* every application payload travels in a ``("DAT", seq, payload)``
  frame with a per-receiver sequence number and is acknowledged by a
  ``("ACK", seq)`` frame;
* unacknowledged frames are retransmitted after ``timeout`` rounds,
  backing off exponentially (doubling per attempt) up to
  ``max_backoff`` rounds between attempts, and are abandoned after
  ``max_attempts`` transmissions (a crashed receiver would otherwise
  hold the sender hostage forever);
* duplicated frames are discarded by sequence number, corrupted frames
  (:class:`~repro.congest.faults.CorruptedPayload` or anything else
  that is not a well-formed frame) are dropped and recovered by the
  sender's retransmission;
* frames are *delivered in sequence order* per sender, preserving the
  FIFO link semantics the fault-free simulator provides.

The wrapper is deterministic: its behavior is a pure function of the
frames it receives, so wrapped runs stay bit-identical across the two
engines just like unwrapped ones.

Cost model: the wrapper pays for what it sends.  Each data frame
carries a tag and a sequence number on top of the payload, acks are
extra messages, and retransmissions are charged like any other
traffic — the experiments in E11 report exactly how much reliability
costs under each fault rate.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..congest.algorithm import VertexAlgorithm, VertexContext

#: Frame tags (short strings: cheap under the bit-accounting model).
DATA = "D"
ACK = "A"


class _FlowState:
    """Per-neighbor transport state (one direction each way)."""

    __slots__ = ("next_seq", "unacked", "next_deliver", "buffer")

    def __init__(self) -> None:
        self.next_seq = 0  # next sequence number to assign
        # seq -> [payload, next_retry_round, attempts]
        self.unacked: Dict[int, List[Any]] = {}
        self.next_deliver = 0  # next in-order seq owed to the inner
        self.buffer: Dict[int, Any] = {}  # out-of-order holdback


class ReliableAlgorithm(VertexAlgorithm):
    """Ack/retransmit wrapper making ``inner`` loss-tolerant.

    Parameters
    ----------
    inner:
        The vertex program to protect.
    timeout:
        Rounds to wait for an ack before the first retransmission.
    max_backoff:
        Cap on the exponentially growing retry interval, in rounds.
    max_attempts:
        Total transmissions (first send + retries) before a frame is
        abandoned; abandoning is what lets a sender finish when its
        peer has crashed.
    """

    def __init__(
        self,
        inner: VertexAlgorithm,
        timeout: int = 4,
        max_backoff: int = 64,
        max_attempts: int = 10,
    ) -> None:
        if timeout < 1:
            raise ValueError("timeout must be at least one round")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.inner = inner
        self.timeout = timeout
        self.max_backoff = max_backoff
        self.max_attempts = max_attempts
        self._inner_ctx: Optional[VertexContext] = None
        self._flows: Dict[Any, _FlowState] = {}
        # Observability: what the transport had to absorb.
        self.retransmissions = 0
        self.duplicates_discarded = 0
        self.invalid_discarded = 0
        self.abandoned = 0

    # -- lifecycle ------------------------------------------------------
    def initialize(self, ctx: VertexContext) -> None:
        # The inner algorithm runs against its own context so its
        # sends can be intercepted and framed.  It shares the outer
        # RNG seed, so a wrapped algorithm draws the same stream it
        # would have drawn unwrapped.
        self._inner_ctx = VertexContext(
            vertex=ctx.vertex,
            neighbors=ctx.neighbors,
            edge_weights=ctx.edge_weights,
            n=ctx.n,
            rng=ctx._rng,
            rng_seed=ctx._rng_seed,
        )
        self._flows = {u: _FlowState() for u in ctx.neighbors}
        self.inner.initialize(self._inner_ctx)
        self._ship_outbox(ctx)

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        inner_ctx = self._inner_ctx
        assert inner_ctx is not None, "step before initialize"
        round_number = ctx.round_number

        # 1. Absorb incoming frames: acks clear pending state, data
        #    frames are acked and queued for in-order delivery.
        delivered: Dict[Any, List[Any]] = {}
        for sender, payloads in inbox.items():
            flow = self._flows[sender]
            for frame in payloads:
                # CorruptedPayload (and any other malformed frame)
                # fails the shape check and is treated as lost.
                if type(frame) is not tuple or len(frame) < 2:
                    self.invalid_discarded += 1
                    continue
                tag = frame[0]
                if tag == ACK and len(frame) == 2:
                    flow.unacked.pop(frame[1], None)
                elif tag == DATA and len(frame) == 3:
                    seq = frame[1]
                    # Always re-ack: the previous ack may have been lost.
                    ctx.send(sender, (ACK, seq))
                    if seq < flow.next_deliver or seq in flow.buffer:
                        self.duplicates_discarded += 1
                        continue
                    flow.buffer[seq] = frame[2]
                    while flow.next_deliver in flow.buffer:
                        delivered.setdefault(sender, []).append(
                            flow.buffer.pop(flow.next_deliver)
                        )
                        flow.next_deliver += 1
                else:
                    self.invalid_discarded += 1

        # 2. Step the inner algorithm with whatever became deliverable.
        if not inner_ctx.halted:
            inner_ctx.round_number = round_number
            self.inner.step(inner_ctx, delivered)
            self._ship_outbox(ctx)

        # 3. Retransmit overdue frames with capped exponential backoff.
        for neighbor, flow in self._flows.items():
            if not flow.unacked:
                continue
            for seq in sorted(flow.unacked):
                entry = flow.unacked[seq]
                if entry[1] > round_number:
                    continue
                if entry[2] >= self.max_attempts:
                    del flow.unacked[seq]
                    self.abandoned += 1
                    continue
                ctx.send(neighbor, (DATA, seq, entry[0]))
                entry[2] += 1
                self.retransmissions += 1
                entry[1] = round_number + min(
                    self.timeout * 2 ** (entry[2] - 1), self.max_backoff
                )

        # 4. Halt once the inner has halted and nothing is in flight.
        if inner_ctx.halted and not any(
            flow.unacked for flow in self._flows.values()
        ):
            ctx.halt(inner_ctx.output)

    # -- helpers --------------------------------------------------------
    def _ship_outbox(self, ctx: VertexContext) -> None:
        """Frame and send everything the inner algorithm queued."""
        round_number = ctx.round_number
        for neighbor, payload in self._inner_ctx._drain_outbox():
            flow = self._flows[neighbor]
            seq = flow.next_seq
            flow.next_seq += 1
            ctx.send(neighbor, (DATA, seq, payload))
            flow.unacked[seq] = [payload, round_number + self.timeout, 1]


def reliable(
    inner_factory: Callable[[Any], VertexAlgorithm],
    timeout: int = 4,
    max_backoff: int = 64,
    max_attempts: int = 10,
) -> Callable[[Any], ReliableAlgorithm]:
    """Lift an algorithm factory into its reliable-transport version.

    ``CongestSimulator(g, reliable(lambda v: Flood(10)), ...)`` runs
    the flood over the ack/retransmit wrapper on every vertex.
    """

    def factory(vertex: Any) -> ReliableAlgorithm:
        return ReliableAlgorithm(
            inner_factory(vertex),
            timeout=timeout,
            max_backoff=max_backoff,
            max_attempts=max_attempts,
        )

    return factory
