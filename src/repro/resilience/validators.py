"""Post-run validators: grade what a faulted execution produced.

A fault-injection experiment is only meaningful if the outcome is
*judged*: did the algorithm still produce a correct object, a degraded
but usable one, or garbage?  Each validator here re-checks a result
against the original graph — independently of the distributed
execution that produced it — and returns a :class:`Verdict`:

``correct``
    The object satisfies its full specification (e.g. the
    decomposition meets its edge budget and every certificate
    verifies; the independent set is independent *and* maximal).
``degraded(ratio)``
    The object is structurally sound but quantitatively short of
    spec; ``ratio`` in (0, 1) says how close it came (e.g. the
    fraction of vertices a framework run actually answered).
``failed``
    The object violates a hard invariant (overlapping clusters, an
    edge inside an "independent" set, a crashed run that produced
    nothing) and must not be used.
``stalled``
    The execution never terminated — the network adversity (a
    partition that outlasted the protocol, sustained churn, unbounded
    delay) kept the algorithm from halting within its round budget.
    Whatever partial object it left behind is not graded.

Experiment cells in the E11/E15 suites attach one verdict per run, so
the fault-tolerance tables report *graded outcomes*, not just timings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from ..decomposition.expander import (
    ExpanderDecomposition,
    verify_expander_decomposition,
)
from ..errors import ReproError
from ..graph import Graph
from ..matching.util import is_matching

#: Verdict status values, in decreasing order of health.
CORRECT = "correct"
DEGRADED = "degraded"
FAILED = "failed"
STALLED = "stalled"


@dataclass(frozen=True)
class Verdict:
    """Graded outcome of one validated result."""

    status: str
    ratio: float
    detail: str = ""

    @classmethod
    def correct(cls, detail: str = "") -> "Verdict":
        return cls(CORRECT, 1.0, detail)

    @classmethod
    def degraded(cls, ratio: float, detail: str = "") -> "Verdict":
        return cls(DEGRADED, max(0.0, min(1.0, ratio)), detail)

    @classmethod
    def failed(cls, detail: str = "") -> "Verdict":
        return cls(FAILED, 0.0, detail)

    @classmethod
    def stalled(cls, detail: str = "") -> "Verdict":
        return cls(STALLED, 0.0, detail)

    @property
    def ok(self) -> bool:
        """Usable result (correct or merely degraded)?"""
        return self.status not in (FAILED, STALLED)

    def label(self) -> str:
        """Compact table cell: ``correct`` / ``degraded(0.87)`` /
        ``failed`` / ``stalled``."""
        if self.status == DEGRADED:
            return f"degraded({self.ratio:.2f})"
        return self.status

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "ratio": self.ratio,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Verdict":
        return cls(
            status=data["status"],
            ratio=data["ratio"],
            detail=data.get("detail", ""),
        )


def validate_decomposition(
    decomposition: ExpanderDecomposition,
    recheck_conductance: bool = True,
) -> Verdict:
    """Re-check a decomposition's certificates after a faulted run.

    Delegates the hard invariants (partition, cut-edge completeness,
    connectivity, conductance certificates) to
    :func:`verify_expander_decomposition`; a violated invariant is
    ``failed``.  An intact decomposition whose inter-cluster edge
    budget overshoots epsilon is ``degraded`` with ratio
    ``epsilon / cut_fraction`` — structurally fine, quantitatively
    short of the theorem.
    """
    # Check the edge budget separately so an overshoot grades as
    # degraded rather than drowning in the hard-invariant failure.
    cut_fraction = decomposition.cut_fraction()
    budget_ok = cut_fraction <= decomposition.epsilon + 1e-12
    try:
        if budget_ok:
            verify_expander_decomposition(
                decomposition, recheck_conductance=recheck_conductance
            )
        else:
            relaxed = ExpanderDecomposition(
                graph=decomposition.graph,
                epsilon=1.0,
                phi=decomposition.phi,
                clusters=decomposition.clusters,
                cut_edges=decomposition.cut_edges,
                certificates=decomposition.certificates,
            )
            verify_expander_decomposition(
                relaxed, recheck_conductance=recheck_conductance
            )
    except ReproError as exc:
        return Verdict.failed(str(exc))
    if budget_ok:
        return Verdict.correct(
            f"cut_fraction={cut_fraction:.4f} <= eps={decomposition.epsilon}"
        )
    return Verdict.degraded(
        decomposition.epsilon / cut_fraction,
        f"cut_fraction={cut_fraction:.4f} exceeds eps={decomposition.epsilon}",
    )


def validate_independent_set(graph: Graph, independent: Set) -> Verdict:
    """Independence is a hard invariant; maximality grades quality."""
    independent = set(independent)
    for v in independent:
        if not graph.has_vertex(v):
            return Verdict.failed(f"vertex {v!r} not in the graph")
    for u, v in graph.edges():
        if u in independent and v in independent:
            return Verdict.failed(f"edge ({u!r}, {v!r}) inside the set")
    addable = [
        v
        for v in graph.vertices()
        if v not in independent
        and not any(u in independent for u in graph.neighbors(v))
    ]
    if not addable:
        return Verdict.correct(f"maximal, size={len(independent)}")
    return Verdict.degraded(
        len(independent) / (len(independent) + len(addable)),
        f"{len(addable)} vertices still addable",
    )


def validate_matching(graph: Graph, matching: Iterable[Tuple]) -> Verdict:
    """Matching validity is hard; maximality grades quality."""
    edges = list(matching)
    if not is_matching(graph, edges):
        return Verdict.failed("edge set is not a matching")
    covered: Set = set()
    for u, v in edges:
        covered.add(u)
        covered.add(v)
    addable = sum(
        1 for u, v in graph.edges() if u not in covered and v not in covered
    )
    if addable == 0:
        return Verdict.correct(f"maximal, size={len(edges)}")
    return Verdict.degraded(
        len(edges) / (len(edges) + addable),
        f"{addable} augmenting edges remain",
    )


def validate_framework(result, graph: Optional[Graph] = None) -> Verdict:
    """Grade a Theorem 2.6 framework run by answer coverage.

    ``correct`` when every vertex received an answer and every cluster
    run succeeded; ``degraded`` with the covered-vertex ratio when the
    run limped (some cluster failed its gather / degree / diameter
    checks, or some vertices went unanswered); ``failed`` when nothing
    was answered at all.
    """
    graph = graph if graph is not None else result.graph
    total = graph.n
    answered = sum(1 for v in graph.vertices() if v in result.answers)
    clusters_ok = all(run.success for run in result.clusters)
    if answered == 0:
        return Verdict.failed("no vertex received an answer")
    if answered == total and clusters_ok:
        return Verdict.correct(f"{answered}/{total} answered")
    failed_clusters = sum(1 for run in result.clusters if not run.success)
    return Verdict.degraded(
        answered / total,
        f"{answered}/{total} answered, {failed_clusters} cluster(s) failed",
    )
