"""Exception hierarchy for the ``repro`` library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the failure domains below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Structural misuse of a :class:`repro.graph.Graph`.

    Raised for missing vertices/edges, self loops, and malformed inputs
    to graph constructors.
    """


class MessageTooLargeError(ReproError):
    """A CONGEST message exceeded the per-message bit budget.

    The CONGEST model caps each message at ``O(log n)`` bits.  The
    simulator measures every message and raises this error when an
    algorithm tries to exceed its configured budget, which is how the
    library *enforces* (rather than merely asserts) the paper's model
    assumptions.
    """

    def __init__(self, bits: int, budget: int, detail: str = "") -> None:
        self.bits = bits
        self.budget = budget
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"message of {bits} bits exceeds the CONGEST budget of "
            f"{budget} bits{suffix}"
        )


class ProtocolError(ReproError):
    """A vertex algorithm violated the simulator's contract.

    Examples: sending to a non-neighbor, producing output before
    halting, or sending more messages per edge than the configured
    capacity in strict mode.
    """


class DecompositionError(ReproError):
    """A decomposition routine could not satisfy its guarantees.

    Raised when an (epsilon, phi) expander decomposition or a
    low-diameter decomposition cannot meet its edge budget or
    conductance certificate on the given input.
    """


class RoutingError(ReproError):
    """Expander routing failed to deliver messages.

    Mirrors the failure semantics of Section 2.3 of the paper: a failed
    routing execution is detected (by reversing the route) and surfaced
    so that callers such as the property tester can react to it.
    """


class SolverError(ReproError):
    """An exact combinatorial solver was used outside its valid range."""


class FaultError(ReproError):
    """A fault-injection plan is malformed or misapplied.

    Raised when a :class:`repro.congest.faults.FaultPlan` carries
    invalid parameters (rates outside [0, 1], rates summing past 1,
    non-positive failure windows) or is applied in a way the fault
    model forbids.  Faults themselves never raise — an injected drop,
    duplicate, corruption, or crash is a *simulated* event, recorded in
    the metrics and trace rather than surfaced as an exception.
    """


class StorageError(ReproError):
    """A durable I/O operation failed after bounded retries.

    Raised by :mod:`repro.storage` when an atomic write, append, or
    read cannot complete — including injected faults from a
    :class:`repro.storage.DiskFaultPlan` (ENOSPC, torn writes) that
    exhaust the retry budget.  Consumers either degrade explicitly
    (the artifact cache falls back to recompute) or propagate loudly
    (journals and checkpoints), but never silently lose data.
    """


class ChecksumError(StorageError):
    """Framed bytes or a sealed JSONL record failed checksum verification.

    Raised when the blake2b digest embedded in a storage frame or a
    record's ``"cs"`` field does not match the payload — evidence of a
    torn write, a bit-flip, or manual tampering.  Readers of durable
    formats treat this as *corrupt*, which means loud recovery
    (recompute, skip-and-count) instead of deserializing garbage.
    """


class JournalError(StorageError):
    """A run journal is unusable for the resume that was requested.

    Raised when ``--resume`` points at a journal whose header is
    unreadable or fails checksum verification: resuming from it could
    silently replay the wrong run, so the CLI stops with exit code 2
    instead.  A journal whose header merely *mismatches* the current
    run fingerprint is not an error — that is a fresh-start, because
    the caller asked for a different experiment.
    """


class CheckpointError(ReproError):
    """A simulation checkpoint could not be captured, loaded, or resumed.

    Raised for schema mismatches, truncated or malformed checkpoint
    files, and resume attempts against a different graph or simulator
    configuration than the one the checkpoint was captured from.  The
    bit-identical-resume guarantee only holds when the resumed world
    matches the captured one, so mismatches fail loudly instead of
    silently diverging.
    """


class CrashedVertexError(FaultError):
    """The output of a crashed vertex was read as if it were valid.

    A vertex crashed by a fault plan halts with no output; reading its
    "result" through :meth:`SimulationResult.output_of` would silently
    treat ``None`` as a computed answer.  This error makes that misuse
    loud, which is how faulted experiments stay "correct / degraded /
    failed" instead of silently wrong.
    """
