"""Local-search correlation clustering for cluster-sized graphs.

The framework lets leaders run "any sequential algorithm"; since exact
agreement maximization is APX-hard, leaders use this solver: seed the
partition with the connected components of the positive subgraph, then
hill-climb by single-vertex moves (to any adjacent cluster or a fresh
singleton) until no move improves, with a few random restarts.  On the
planted-partition workloads of experiment E7 this recovers the optimum
of small instances (pinned against :func:`exact_correlation` in tests)
and dominates both trivial baselines.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..graph import Graph, edge_key
from ..generators.weights import SignMap
from ..rng import SeedLike, ensure_rng
from .exact import EXACT_CORRELATION_LIMIT, exact_correlation
from .scoring import agreement_score, best_trivial_clustering


def _positive_component_seed(graph: Graph, signs: SignMap) -> Dict:
    """Initial labels: components of the positive subgraph."""
    positive = Graph()
    for v in graph.vertices():
        positive.add_vertex(v)
    for u, v in graph.edges():
        if signs[edge_key(u, v)] > 0:
            positive.add_edge(u, v)
    labels: Dict = {}
    for i, comp in enumerate(positive.connected_components()):
        for v in comp:
            labels[v] = i
    return labels


def _move_gain(graph: Graph, signs: SignMap, labels: Dict, v, target) -> int:
    """Score change from relabeling ``v`` to ``target``."""
    current = labels[v]
    if current == target:
        return 0
    gain = 0
    for u in graph.neighbors(v):
        sign = signs[edge_key(u, v)]
        before_same = labels[u] == current
        after_same = labels[u] == target
        before = 1 if (sign > 0) == before_same else 0
        after = 1 if (sign > 0) == after_same else 0
        gain += after - before
    return gain


def local_search_correlation(
    graph: Graph,
    signs: SignMap,
    seed: SeedLike = None,
    restarts: int = 3,
    max_sweeps: int = 50,
) -> Tuple[Dict, int]:
    """Hill-climbing agreement maximization; returns (labels, score)."""
    rng = ensure_rng(seed)
    fresh_label = graph.n + 1  # labels 0..n used by seeds

    best_labels, best_score = best_trivial_clustering(graph, signs)

    for restart in range(restarts):
        if restart == 0:
            labels = _positive_component_seed(graph, signs)
        elif restart == 1:
            labels = dict(best_labels)
        else:
            labels = {
                v: rng.randrange(max(1, graph.n // 3))
                for v in graph.vertices()
            }
        next_label = fresh_label + restart * graph.n

        for _sweep in range(max_sweeps):
            improved = False
            order = graph.vertices()
            rng.shuffle(order)
            for v in order:
                candidates: Set = {labels[u] for u in graph.neighbors(v)}
                candidates.add(next_label)
                best_target = labels[v]
                best_gain = 0
                for target in candidates:
                    gain = _move_gain(graph, signs, labels, v, target)
                    if gain > best_gain:
                        best_gain = gain
                        best_target = target
                if best_gain > 0:
                    if best_target == next_label:
                        next_label += 1
                    labels[v] = best_target
                    improved = True
            if not improved:
                break

        score = agreement_score(graph, signs, labels)
        if score > best_score:
            best_score = score
            best_labels = dict(labels)

    return best_labels, best_score


def solve_correlation(
    graph: Graph, signs: SignMap, seed: SeedLike = None
) -> Tuple[Dict, int]:
    """The leaders' solver: exact when small, local search otherwise."""
    if graph.n <= EXACT_CORRELATION_LIMIT:
        return exact_correlation(graph, signs)
    return local_search_correlation(graph, signs, seed=seed)
