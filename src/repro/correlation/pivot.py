"""The Pivot baseline and the disagreement-minimization objective.

Section 1.1 of the paper notes the two equivalent-for-exact-solutions
views of correlation clustering: agreement maximization (what the
framework approximates) and disagreement minimization (APX-hard on
complete graphs, with classic O(1)-approximations like Ailon-Charikar-
Newman's Pivot).  This module supplies the disagreement score and a
Pivot implementation so the experiments can report both objectives on
the same clusterings.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import GraphError
from ..graph import Graph, edge_key
from ..generators.weights import SignMap
from ..rng import SeedLike, ensure_rng
from .scoring import agreement_score


def disagreement_score(graph: Graph, signs: SignMap, labels: Dict) -> int:
    """Number of disagreements: |E| minus the agreement score."""
    return graph.m - agreement_score(graph, signs, labels)


def pivot_clustering(
    graph: Graph, signs: SignMap, seed: SeedLike = None
) -> Tuple[Dict, int]:
    """Ailon-Charikar-Newman Pivot, adapted to general (signed) graphs.

    Repeatedly pick a random unclustered pivot and cluster it with its
    unclustered *positive* neighbors.  A 3-approximation for
    disagreement minimization on complete graphs; on the sparse graphs
    of this repository it is a baseline only (returned score is the
    *agreement* objective, for comparability with Theorem 1.3).
    """
    rng = ensure_rng(seed)
    unclustered = set(graph.vertices())
    labels: Dict = {}
    next_label = 0
    order = graph.vertices()
    rng.shuffle(order)
    for pivot in order:
        if pivot not in unclustered:
            continue
        members = {pivot}
        for u in graph.neighbors(pivot):
            if u in unclustered and signs.get(edge_key(pivot, u), -1) > 0:
                members.add(u)
        for v in members:
            labels[v] = next_label
            unclustered.discard(v)
        next_label += 1
    return labels, agreement_score(graph, signs, labels)
