"""Distributed (1 - epsilon) correlation clustering (Theorem 1.3 / §3.3).

Section 3.3 verbatim: run Theorem 2.6 with epsilon' = epsilon / 2, let
each leader solve its cluster, and take the union of the per-cluster
clusterings (with globally distinct labels).  The analysis charges the
lost positive inter-cluster edges against gamma(G) >= |E| / 2; negative
inter-cluster edges automatically score, since distinct clusters never
share a label.

Signs travel as edge weights (+1 / -1), so the standard topology
gathering delivers them to the leaders unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.framework import FrameworkResult, run_framework
from ..errors import SolverError
from ..graph import Graph, edge_key
from ..generators.weights import SignMap
from ..rng import SeedLike, ensure_rng
from .local_search import solve_correlation
from .scoring import agreement_score


@dataclass
class DistributedClusteringResult:
    """The clustering plus its execution record."""

    labels: Dict
    score: int
    epsilon: float
    framework: FrameworkResult


def _signed_graph(graph: Graph, signs: SignMap) -> Graph:
    """Copy of ``graph`` with the sign stored as the edge weight."""
    g = Graph()
    for v in graph.vertices():
        g.add_vertex(v)
    for u, v in graph.edges():
        sign = signs.get(edge_key(u, v))
        if sign not in (1, -1):
            raise SolverError(f"edge ({u!r}, {v!r}) has invalid sign {sign!r}")
        g.add_edge(u, v, float(sign))
    return g


def distributed_correlation_clustering(
    graph: Graph,
    signs: SignMap,
    epsilon: float,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> DistributedClusteringResult:
    """Theorem 1.3: (1 - epsilon)-approximate agreement maximization."""
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    signed = _signed_graph(graph, signs)

    def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
        local_signs = {
            edge_key(u, v): (1 if w > 0 else -1)
            for u, v, w in sub.weighted_edges()
        }
        local_labels, _score = solve_correlation(
            sub, local_signs, seed=rng.getrandbits(64)
        )
        # Globalize labels by pairing them with the leader's identity;
        # each answer is one O(log n)-bit pair.
        return {v: ("L", local_labels[v]) for v in sub.vertices()}

    framework = run_framework(
        signed,
        epsilon / 2.0,
        solver=solver,
        phi=phi,
        seed=rng.getrandbits(64),
    )

    labels: Dict = {}
    for run in framework.clusters:
        for v in run.vertices:
            answer = framework.answers.get(v)
            local = answer[1] if answer else 0
            labels[v] = (run.leader, local)

    score = agreement_score(graph, signs, labels)
    return DistributedClusteringResult(
        labels=labels,
        score=score,
        epsilon=epsilon,
        framework=framework,
    )
