"""Agreement-maximization correlation clustering (Theorem 1.3 / §3.3).

Edges carry +/- labels; the goal is a vertex partition maximizing
intra-cluster positive edges plus inter-cluster negative edges.
Provided: the agreement score, exact optimum for small graphs, a
local-search solver for cluster-sized graphs, the trivial baselines
behind the gamma(G) >= |E|/2 bound, and the framework-based
(1 - epsilon)-approximation.
"""

from .scoring import agreement_score, best_trivial_clustering
from .exact import exact_correlation
from .local_search import local_search_correlation, solve_correlation
from .pivot import disagreement_score, pivot_clustering
from .distributed import (
    DistributedClusteringResult,
    distributed_correlation_clustering,
)

__all__ = [
    "agreement_score",
    "best_trivial_clustering",
    "exact_correlation",
    "local_search_correlation",
    "solve_correlation",
    "disagreement_score",
    "pivot_clustering",
    "DistributedClusteringResult",
    "distributed_correlation_clustering",
]
