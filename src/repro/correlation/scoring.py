"""Scoring and trivial baselines for correlation clustering."""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import GraphError
from ..graph import Graph, edge_key
from ..generators.weights import SignMap


def agreement_score(graph: Graph, signs: SignMap, labels: Dict) -> int:
    """Number of agreements of the clustering ``labels``.

    An edge agrees when it is positive and intra-cluster, or negative
    and inter-cluster — the objective of Section 3.3.
    """
    score = 0
    for u, v in graph.edges():
        sign = signs.get(edge_key(u, v))
        if sign is None:
            raise GraphError(f"edge ({u!r}, {v!r}) has no sign")
        same = labels[u] == labels[v]
        if (sign > 0) == same:
            score += 1
    return score


def best_trivial_clustering(graph: Graph, signs: SignMap) -> Tuple[Dict, int]:
    """The better of all-singletons and everything-in-one-cluster.

    Guarantees score >= |E| / 2 (the gamma(G) bound the framework's
    analysis charges against): singletons collect every negative edge,
    the single cluster collects every positive one.
    """
    singletons = {v: i for i, v in enumerate(graph.vertices())}
    one_cluster = {v: 0 for v in graph.vertices()}
    score_singletons = agreement_score(graph, signs, singletons)
    score_one = agreement_score(graph, signs, one_cluster)
    if score_singletons >= score_one:
        return singletons, score_singletons
    return one_cluster, score_one
