"""Exact agreement maximization by pruned partition enumeration.

Correlation clustering is APX-hard, so exact solving is reserved for
small graphs: the enumeration assigns vertices one at a time to an
existing group or a fresh one (restricted growth strings, i.e. set
partitions without label symmetry), pruning branches whose score plus
the number of unscored edges cannot beat the incumbent.  Used as the
oracle for the local-search solver and for tiny clusters.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import SolverError
from ..graph import Graph, edge_key
from ..generators.weights import SignMap

#: Largest vertex count the exponential enumeration accepts.
EXACT_CORRELATION_LIMIT = 11


def exact_correlation(graph: Graph, signs: SignMap) -> Tuple[Dict, int]:
    """Optimal clustering and its agreement score (n <= 11 only)."""
    if graph.n > EXACT_CORRELATION_LIMIT:
        raise SolverError(
            f"exact correlation clustering is limited to "
            f"n <= {EXACT_CORRELATION_LIMIT}"
        )
    vertices = graph.vertices()
    n = len(vertices)
    if n == 0:
        return {}, 0
    index = {v: i for i, v in enumerate(vertices)}

    # Adjacency with signs, restricted to already-placed vertices.
    signed_neighbors: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for u, v in graph.edges():
        sign = signs[edge_key(u, v)]
        iu, iv = index[u], index[v]
        hi, lo = max(iu, iv), min(iu, iv)
        signed_neighbors[hi].append((lo, sign))

    # Edges scored when placing vertex i: those to vertices < i.
    future_edges = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        future_edges[i] = future_edges[i + 1] + len(signed_neighbors[i])

    best_score = -1
    best_labels: List[int] = []

    labels = [0] * n

    def place(i: int, groups: int, score: int) -> None:
        nonlocal best_score, best_labels
        if score + future_edges[i] <= best_score:
            return
        if i == n:
            best_score = score
            best_labels = labels[:]
            return
        for g in range(groups + 1):
            gained = 0
            for j, sign in signed_neighbors[i]:
                same = labels[j] == g
                if (sign > 0) == same:
                    gained += 1
            labels[i] = g
            place(i + 1, max(groups, g + 1), score + gained)

    place(0, 0, 0)
    return {vertices[i]: best_labels[i] for i in range(n)}, best_score
