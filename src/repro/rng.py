"""Seeded randomness helpers.

All randomized code in this library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`random.Random` / :class:`numpy.random.Generator` instance.  The
helpers here normalize those inputs so that every experiment in the
benchmark harness is reproducible bit-for-bit from a single integer.
"""

from __future__ import annotations

import random
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, random.Random]
NumpySeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    Passing an existing ``random.Random`` returns it unchanged so that a
    caller can thread one generator through multiple subroutines.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def ensure_numpy_rng(seed: NumpySeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(rng: random.Random, stream: str) -> int:
    """Derive a deterministic sub-seed for a named random stream.

    Distributed simulations run many independent randomized components
    (one per vertex, per cluster, per phase).  Deriving per-component
    seeds from one root generator keeps runs reproducible regardless of
    the order in which components consume randomness.
    """
    # Mix the stream name into the draw so distinct streams with the
    # same root generator do not collide.
    base = rng.getrandbits(64)
    return hash((base, stream)) & 0x7FFFFFFFFFFFFFFF


def split_rng(rng: random.Random, n: int) -> list:
    """Split ``rng`` into ``n`` independent child generators."""
    if n < 0:
        raise ValueError("cannot split into a negative number of generators")
    return [random.Random(rng.getrandbits(64)) for _ in range(n)]
