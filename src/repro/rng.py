"""Seeded randomness helpers and exact Mersenne-Twister vectorization.

All randomized code in this library accepts a ``seed`` argument that may
be ``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`random.Random` / :class:`numpy.random.Generator` instance.  The
helpers here normalize those inputs so that every experiment in the
benchmark harness is reproducible bit-for-bit from a single integer.

The module is also the home of the library's one license to go fast
without changing a single simulated outcome: :class:`MTStream` (one
``random.Random`` consumed in NumPy batches) and :class:`MTColumn`
(many per-vertex ``random.Random`` streams held as the rows of one
matrix).  Both reproduce CPython's MT19937 word-for-word — the same
twist, the same tempering, the same word-pair-to-float ``random()``
construction, the same ``_randbelow`` rejection loop, and the same
``init_by_array`` seeding — so batched draws and scalar draws observe
one identical stream, and state can be committed back into the Python
generators at any observation point.

NumPy is optional: when it is missing (or ``REPRO_NO_NUMPY`` is set),
``HAVE_NUMPY`` is False, the vectorized classes refuse construction,
and every consumer (walk-exchange vectorization, the columnar round
kernels of :mod:`repro.congest.kernels`) silently degrades to its
scalar path.

Reference: CPython ``_randommodule.c`` (``genrand_uint32``,
``init_by_array``, ``random_random``) and ``Lib/random.py``
(``_randbelow_with_getrandbits``).
"""

from __future__ import annotations

import os
import random
from typing import List, Optional, Sequence, Union

try:  # pragma: no cover - exercised via the no-numpy CI leg
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled by REPRO_NO_NUMPY")
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

SeedLike = Union[None, int, random.Random]
if HAVE_NUMPY:
    NumpySeedLike = Union[None, int, "np.random.Generator"]
else:  # pragma: no cover - no-numpy degradation
    NumpySeedLike = Union[None, int]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    Passing an existing ``random.Random`` returns it unchanged so that a
    caller can thread one generator through multiple subroutines.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def ensure_numpy_rng(seed: NumpySeedLike = None):
    """Return a :class:`numpy.random.Generator` for ``seed``."""
    if np is None:  # pragma: no cover - no-numpy degradation
        raise RuntimeError(
            "numpy is unavailable; this code path requires it"
        )
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(rng: random.Random, stream: str) -> int:
    """Derive a deterministic sub-seed for a named random stream.

    Distributed simulations run many independent randomized components
    (one per vertex, per cluster, per phase).  Deriving per-component
    seeds from one root generator keeps runs reproducible regardless of
    the order in which components consume randomness.
    """
    # Mix the stream name into the draw so distinct streams with the
    # same root generator do not collide.
    base = rng.getrandbits(64)
    return hash((base, stream)) & 0x7FFFFFFFFFFFFFFF


def split_rng(rng: random.Random, n: int) -> list:
    """Split ``rng`` into ``n`` independent child generators."""
    if n < 0:
        raise ValueError("cannot split into a negative number of generators")
    return [random.Random(rng.getrandbits(64)) for _ in range(n)]


# ---------------------------------------------------------------------------
# Exact MT19937 vectorization
# ---------------------------------------------------------------------------

#: MT19937 parameters (Matsumoto & Nishimura 1998), as in CPython.
_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER_MASK = 0x80000000
_LOWER_MASK = 0x7FFFFFFF

#: random.Random state tuple version this module understands.
_STATE_VERSION = 3


def _twist_block(key):
    """One MT19937 state transition on the last axis of ``key``.

    ``key`` is a ``(..., 624)`` uint32 array: a single adopted stream
    (1-D) or a stack of per-vertex streams (2-D), twisted identically.

    The scalar reference updates ``mt[kk]`` in place for ascending
    ``kk``; every ``y`` is built from values the loop has not yet
    overwritten, so all 623 leading ``y`` words come straight from the
    old key.  The recurrence's only true dependency is
    ``new[kk] = f(new[kk - 227])`` for ``kk >= 227``, a chain of stride
    227 — two chunked assignments resolve it exactly.
    """
    up = np.uint32(_UPPER_MASK)
    low = np.uint32(_LOWER_MASK)
    one = np.uint32(1)
    mat = np.uint32(_MATRIX_A)
    new = np.empty_like(key)
    y = (key[..., : _N - 1] & up) | (key[..., 1:] & low)
    ysh = (y >> one) ^ ((y & one) * mat)
    new[..., : _N - _M] = key[..., _M:] ^ ysh[..., : _N - _M]
    new[..., 227:454] = new[..., 0:227] ^ ysh[..., 227:454]
    new[..., 454:623] = new[..., 227:396] ^ ysh[..., 454:623]
    y_last = (key[..., _N - 1] & up) | (new[..., 0] & low)
    new[..., _N - 1] = (
        new[..., _M - 1] ^ (y_last >> one) ^ ((y_last & one) * mat)
    )
    return new


def _temper(y):
    """MT19937 output tempering, elementwise on a uint32 array."""
    y = y ^ (y >> np.uint32(11))
    y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
    y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
    y = y ^ (y >> np.uint32(18))
    return y


class MTStream:
    """A batched, commit-back-able clone of one ``random.Random``.

    The instance owns the generator's stream from adoption until
    :meth:`commit`; interleaving scalar draws on the original object in
    between would desynchronize the two (exactly as sharing one
    generator between two consumers always would).
    """

    __slots__ = ("_rng", "_key", "_pos", "_gauss")

    def __init__(self, rng: random.Random) -> None:
        if np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise RuntimeError("MTStream requires numpy")
        version, internal, gauss = rng.getstate()
        if version != _STATE_VERSION or len(internal) != _N + 1:
            raise ValueError(
                f"unsupported random.Random state version {version!r}"
            )
        self._rng = rng
        self._key = np.array(internal[:_N], dtype=np.uint32)
        self._pos = int(internal[_N])
        self._gauss = gauss

    # -- core word generation ------------------------------------------
    def _twist(self) -> None:
        """One vectorized MT19937 state transition."""
        self._key = _twist_block(self._key)
        self._pos = 0

    _temper = staticmethod(_temper)

    def words(self, count: int):
        """The next ``count`` 32-bit output words, in stream order."""
        out = np.empty(count, np.uint32)
        filled = 0
        while filled < count:
            if self._pos >= _N:
                self._twist()
            take = min(_N - self._pos, count - filled)
            out[filled : filled + take] = _temper(
                self._key[self._pos : self._pos + take]
            )
            self._pos += take
            filled += take
        return out

    # -- distribution-level batches ------------------------------------
    def random_batch(self, count: int):
        """``count`` floats, bit-identical to ``rng.random()`` calls.

        CPython builds each double from two consecutive words:
        ``((w0 >> 5) * 2**26 + (w1 >> 6)) / 2**53``.
        """
        w = self.words(2 * count)
        a = (w[0::2] >> np.uint32(5)).astype(np.float64)
        b = (w[1::2] >> np.uint32(6)).astype(np.float64)
        return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)

    def randbelow_batch(self, n: int, count: int) -> Sequence[int]:
        """``count`` ints below ``n``, identical to ``rng._randbelow``.

        The scalar rejection loop draws ``k = n.bit_length()`` top bits
        of one word per attempt until the value falls below ``n``.
        Batching draws exactly as many words as acceptances still
        needed, keeps the accepted values in word order, and repeats:
        the loop can only terminate on a chunk whose final word was
        itself an acceptance, so the total words consumed equal the
        scalar loop's consumption exactly — never one word more.
        """
        if count <= 0:
            return np.empty(0, np.uint32)
        if n <= 0:
            raise ValueError("n must be positive")
        if n.bit_length() > 32:
            # Multi-word getrandbits has different consumption; every
            # in-repo bound is a vertex/neighbor count, far below 2^32.
            raise ValueError("randbelow_batch supports bounds < 2**32")
        shift = np.uint32(32 - n.bit_length())
        chunks: List = []
        accepted = 0
        while accepted < count:
            r = self.words(count - accepted) >> shift
            good = r[r < n]
            accepted += len(good)
            chunks.append(good)
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    # -- handing the stream back ---------------------------------------
    def commit(self) -> None:
        """Write the advanced state back into the adopted generator.

        After this call the original ``random.Random`` continues the
        stream exactly where the batched draws left off.
        """
        state = tuple(self._key.tolist()) + (self._pos,)
        self._rng.setstate((_STATE_VERSION, state, self._gauss))


# -- vectorized CPython-exact seeding ---------------------------------------

_GENRAND_BASE = None  # lazily computed init_genrand(19650218) state


def _init_genrand_base():
    """The shared ``init_genrand(19650218)`` state ``init_by_array``
    starts from (CPython seeds every int through ``init_by_array``)."""
    global _GENRAND_BASE
    if _GENRAND_BASE is None:
        mt = [0] * _N
        mt[0] = 19650218
        for i in range(1, _N):
            mt[i] = (
                1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i
            ) & 0xFFFFFFFF
        _GENRAND_BASE = np.array(mt, dtype=np.uint32)
    return _GENRAND_BASE


def _seed_key(seed: int) -> List[int]:
    """``seed`` as CPython's ``init_by_array`` key: the 32-bit
    little-endian words of ``abs(seed)``, with ``0`` mapping to ``[0]``."""
    n = abs(int(seed))
    if n == 0:
        return [0]
    words = []
    while n:
        words.append(n & 0xFFFFFFFF)
        n >>= 32
    return words


def mt_state_matrix(seeds: Sequence[int]):
    """Rows of MT19937 key state, one per seed, as ``random.Random(s)``
    would produce (verified word-exact by ``tests/test_kernels.py``).

    The 1247 ``init_by_array`` steps are sequential in the state index
    but independent across seeds, so each step runs vectorized over all
    rows sharing a key length (1-word and 2-word keys for the 64-bit
    per-vertex seeds; anything longer falls back to scalar seeding).
    """
    rows = len(seeds)
    out = np.empty((rows, _N), dtype=np.uint32)
    keys = [_seed_key(s) for s in seeds]
    by_len = {}
    for r, key in enumerate(keys):
        by_len.setdefault(len(key), []).append(r)
    for keylen, group in by_len.items():
        idx = np.array(group, dtype=np.intp)
        if keylen > 8:  # arbitrary-precision seeds: not worth vectorizing
            for r in group:
                state = random.Random(seeds[r]).getstate()[1]
                out[r] = np.array(state[:_N], dtype=np.uint32)
            continue
        key_rows = np.array(
            [keys[r] for r in group], dtype=np.uint32
        ).T.copy()  # (keylen, len(group))
        # Transposed (state-index-major) layout: every sequential step
        # touches contiguous rows instead of strided columns, which
        # roughly halves the seeding sweep for large vertex counts.
        mt = np.repeat(
            _init_genrand_base()[:, None], len(group), axis=1
        )
        m1 = np.uint32(1664525)
        m2 = np.uint32(1566083941)
        thirty = np.uint32(30)
        i, j = 1, 0
        for _ in range(_N):
            prev = mt[i - 1]
            mt[i] = (
                (mt[i] ^ ((prev ^ (prev >> thirty)) * m1))
                + key_rows[j]
                + np.uint32(j)
            )
            i += 1
            j += 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
            if j >= keylen:
                j = 0
        for _ in range(_N - 1):
            prev = mt[i - 1]
            mt[i] = (
                mt[i] ^ ((prev ^ (prev >> thirty)) * m2)
            ) - np.uint32(i)
            i += 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
        mt[0] = np.uint32(0x80000000)
        out[idx] = mt.T
    return out


class MTColumn:
    """Many per-vertex ``random.Random`` streams as rows of one matrix.

    Row ``i`` is an exact clone of vertex ``i``'s private generator;
    draws are *ragged*: each call names the rows that draw this round,
    and every named row consumes exactly the words its scalar twin
    would.  Rows are adopted lazily — from a bare integer seed (the
    vectorized ``init_by_array``) or from a live generator's state —
    and handed back via :meth:`state_of` at observation points
    (checkpoints, end of run), never per round: materializing 625-word
    tuples every round would cost more than the scalar path.

    The ``rows`` argument of every draw method must not contain
    duplicate indices (each vertex draws through one call per round).
    """

    def __init__(self, count: int) -> None:
        if np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise RuntimeError("MTColumn requires numpy")
        self._count = count
        self._key = None  # (count, 624) uint32, allocated on first adoption
        self._pos = None  # (count,) int64
        self._adopted = None  # (count,) bool
        self._dirty = None  # (count,) bool: drew since last state_of sweep
        self._gauss: List = [None] * count
        # Replay bookkeeping for the cheap hand-back path: rows adopted
        # from a bare seed remember it, plus how many twist blocks they
        # have burned, so ``fresh_randoms`` can rebuild the generator in
        # C (reseed + skip) instead of materializing a 625-word tuple.
        self._seed: List = [None] * count
        self._twists = None  # (count,) int64

    def _ensure(self) -> None:
        if self._key is None:
            self._key = np.zeros((self._count, _N), dtype=np.uint32)
            self._pos = np.full(self._count, _N, dtype=np.int64)
            self._adopted = np.zeros(self._count, dtype=bool)
            self._dirty = np.zeros(self._count, dtype=bool)
            self._twists = np.zeros(self._count, dtype=np.int64)

    # -- adoption -------------------------------------------------------
    def adopt_seeds(self, rows, seeds: Sequence[int]) -> None:
        """Adopt ``rows`` as freshly seeded generators (vectorized)."""
        self._ensure()
        idx = np.asarray(rows, dtype=np.intp)
        if idx.size == 0:
            return
        self._key[idx] = mt_state_matrix(seeds)
        self._pos[idx] = _N
        self._adopted[idx] = True
        self._twists[idx] = 0
        for r, s in zip(idx.tolist(), seeds):
            self._gauss[r] = None
            self._seed[r] = s

    def adopt_state(self, row: int, rng: random.Random) -> None:
        """Adopt one row from a live generator's current state."""
        self._ensure()
        version, internal, gauss = rng.getstate()
        if version != _STATE_VERSION or len(internal) != _N + 1:
            raise ValueError(
                f"unsupported random.Random state version {version!r}"
            )
        self._key[row] = np.array(internal[:_N], dtype=np.uint32)
        self._pos[row] = internal[_N]
        self._adopted[row] = True
        self._gauss[row] = gauss
        self._seed[row] = None  # unknown provenance: no replay shortcut
        self._twists[row] = 0

    def adopted(self, rows) -> bool:
        """Whether every row in ``rows`` has been adopted."""
        if self._adopted is None:
            return len(rows) == 0
        return bool(self._adopted[np.asarray(rows, dtype=np.intp)].all())

    # -- ragged draws ---------------------------------------------------
    def words_column(self, rows):
        """One 32-bit output word per row of ``rows``, per-row streams."""
        idx = np.asarray(rows, dtype=np.intp)
        pos = self._pos
        need = idx[pos[idx] >= _N]
        if need.size:
            self._key[need] = _twist_block(self._key[need])
            pos[need] = 0
            self._twists[need] += 1
        p = pos[idx]
        w = _temper(self._key[idx, p])
        pos[idx] = p + 1
        self._dirty[idx] = True
        return w

    def random_column(self, rows):
        """One ``random()`` float per row, bit-identical per stream."""
        a = (self.words_column(rows) >> np.uint32(5)).astype(np.float64)
        b = (self.words_column(rows) >> np.uint32(6)).astype(np.float64)
        return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)

    def randbelow_column(self, rows, bounds):
        """One ``_randbelow(bounds[k])`` int per row, per-row bounds.

        Each pending row draws one word per rejection attempt, exactly
        like the scalar loop; rows accept independently.
        """
        idx = np.asarray(rows, dtype=np.intp)
        bounds = np.asarray(bounds, dtype=np.int64)
        if np.any(bounds <= 0):
            raise ValueError("bounds must be positive")
        if np.any(bounds >> np.int64(32)):
            raise ValueError("randbelow_column supports bounds < 2**32")
        # bit_length via frexp: exact for the int64 range (< 2**53).
        shift = (
            np.uint32(32)
            - np.frexp(bounds.astype(np.float64))[1].astype(np.uint32)
        )
        out = np.zeros(idx.size, dtype=np.int64)
        pending = np.arange(idx.size, dtype=np.intp)
        while pending.size:
            w = self.words_column(idx[pending])
            r = (w >> shift[pending]).astype(np.int64)
            ok = r < bounds[pending]
            out[pending[ok]] = r[ok]
            pending = pending[~ok]
        return out

    # -- handing streams back -------------------------------------------
    def dirty_rows(self):
        """Rows that drew since the last :meth:`clear_dirty`."""
        if self._dirty is None:
            return np.empty(0, dtype=np.intp)
        return np.nonzero(self._dirty)[0]

    def clear_dirty(self) -> None:
        if self._dirty is not None:
            self._dirty[:] = False

    def state_of(self, row: int):
        """The ``random.Random`` state tuple for one adopted row."""
        return (
            _STATE_VERSION,
            tuple(self._key[row].tolist()) + (int(self._pos[row]),),
            self._gauss[row],
        )

    def fresh_randoms(self, rows) -> List[random.Random]:
        """A ``random.Random`` clone per row of ``rows``, cheaply.

        A row adopted from a bare integer seed is rebuilt entirely in
        C: reseed, then burn the words it has consumed with a single
        ``getrandbits`` call.  That sidesteps materializing the
        625-word state tuple (1.25M Python ints per 2000-vertex sweep),
        which would otherwise dominate short kernelized runs.  Rows of
        unknown provenance (adopted mid-stream from a live generator)
        or with a cached gauss value take the exact tuple path.
        """
        idx = np.asarray(rows, dtype=np.intp)
        out: List[random.Random] = []
        if idx.size == 0:
            return out
        consumed = np.maximum(
            0, self._twists[idx] * _N + self._pos[idx] - _N
        ).tolist()
        for row, used in zip(idx.tolist(), consumed):
            seed = self._seed[row]
            if seed is not None and self._gauss[row] is None:
                rng = random.Random(seed)
                if used:
                    rng.getrandbits(32 * used)
                out.append(rng)
            else:
                out.append(fresh_random_from_state(self.state_of(row)))
        return out


def fresh_random_from_state(state) -> random.Random:
    """A ``random.Random`` carrying ``state`` without the cost (and the
    entropy consumption) of default seeding."""
    rng = random.Random.__new__(random.Random)
    rng.setstate(state)
    return rng
