"""Unified telemetry: phase spans, counters, gauges, and histograms.

The paper's claims are resource claims — rounds, O(log n)-bit messages,
inter-cluster edge budgets, routing congestion — and the ROADMAP's
north star is throughput.  Both need *attribution*: which phase of the
pipeline spent the time, how the per-edge congestion is distributed
(not just its max), how message sizes spread below the budget, and
whether a change regressed any of it.  ``repro.obs`` is that substrate:

* :func:`span` — hierarchical phase spans with monotonic wall/CPU
  timing (``span("partition")`` / nested ``span("gather")`` yields the
  path ``partition/gather``);
* :func:`count` / :func:`gauge` / :func:`observe` — counters, gauges,
  and fixed-bucket histograms;
* :class:`TelemetryRegistry` — the process-global store behind those
  helpers, mergeable across process boundaries via the same
  ``to_dict``/``merge_dict`` pattern ``CongestMetrics`` uses;
* sinks — JSONL event stream, Prometheus text exposition, and a
  rendered terminal report (``repro obs report``);
* baselines — schema-versioned perf snapshots (``repro bench
  --telemetry out.json``) diffed for regressions by
  ``repro obs diff old.json new.json --budget 1.25``.

Telemetry is **off by default** and costs ~nothing when off: every
helper starts with one module-flag check, and :func:`span` returns a
shared no-op context manager.  Nothing in this package imports the
rest of ``repro``, so any module may instrument itself freely.
"""

from .histogram import DEFAULT_BOUNDS, FixedHistogram
from .registry import (
    NO_SPAN,
    TelemetryRegistry,
    count,
    current_registry,
    disable,
    enable,
    enabled,
    gauge,
    observe,
    reset,
    span,
    telemetry_scope,
)
from .sinks import JsonlSink, iter_events, prometheus_text, render_report
from .baseline import (
    SNAPSHOT_SCHEMA_VERSION,
    BaselineDiff,
    build_snapshot,
    diff_snapshots,
    load_snapshot,
    write_snapshot,
)
from .trace import (
    Divergence,
    VertexRoundReport,
    diff_traces,
    explain_vertex,
    load_trace_jsonl,
    split_streams,
)
from .timeline import (
    chrome_trace,
    timeline_from_snapshot,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "FixedHistogram",
    "NO_SPAN",
    "TelemetryRegistry",
    "count",
    "current_registry",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "observe",
    "reset",
    "span",
    "telemetry_scope",
    "JsonlSink",
    "iter_events",
    "prometheus_text",
    "render_report",
    "SNAPSHOT_SCHEMA_VERSION",
    "BaselineDiff",
    "build_snapshot",
    "diff_snapshots",
    "load_snapshot",
    "write_snapshot",
    "Divergence",
    "VertexRoundReport",
    "diff_traces",
    "explain_vertex",
    "load_trace_jsonl",
    "split_streams",
    "chrome_trace",
    "timeline_from_snapshot",
    "validate_chrome_trace",
    "write_chrome_trace",
]
