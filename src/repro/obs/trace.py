"""Trace-file divergence diagnosis and per-vertex provenance.

The repo's bit-identity guarantee (outputs, metrics, traces equal
across engines, kernel modes, batched delivery, checkpoints, and the
adversity layer) used to be enforced by byte-diffing trace JSONL files
— a check that can only say *different*, never *where*.  This module
turns two trace files into a structured answer: the first divergent
round, the first divergent field within it, and — when the traces
carry schema-5 detail events — the exact message (sender, receiver,
sequence number) that first disagrees.

Like the rest of :mod:`repro.obs`, this module imports nothing from
the rest of the package: it operates on the raw JSONL dictionaries, so
any producer of round-trace files (current engines, future sharded
backends) gets diagnosis for free.

Conventions:

* A trace file holds one line per (simulation, round); the ``sim``
  label distinguishes interleaved simulations.  Labels embed the
  engine name (``fast:n=24`` vs ``reference:n=24``), so streams are
  paired *positionally* (order of first appearance), never by label.
* ``sim`` and ``schema`` are ignored by default: two files that
  describe the same execution from different engines or writer
  versions should diff clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Round-record fields compared in order of diagnostic value: a
#: divergent round counter means the executions took different paths;
#: divergent traffic volume narrows to the channel; histograms and
#: events narrow to edges and individual messages.  Fields absent from
#: a record compare as their schema default.
FIELD_ORDER: Tuple[Tuple[str, Any], ...] = (
    ("round", None),
    ("messages", 0),
    ("bits", 0),
    ("stepped", 0),
    ("idle", 0),
    ("halted", 0),
    ("skipped_before", 0),
    ("max_congestion", 0),
    ("congestion_histogram", {}),
    ("message_bits_histogram", {}),
    ("dropped", 0),
    ("duplicated", 0),
    ("corrupted", 0),
    ("crashed", 0),
    ("rejoined", 0),
    ("delayed", 0),
    ("topo_lost", 0),
    ("partitioned", 0),
    ("events", []),
)

#: Fields that never indicate a real divergence: the label embeds the
#: engine name and the schema stamp embeds the writer version.
DEFAULT_IGNORE: Tuple[str, ...] = ("sim", "schema")


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a round-trace JSONL file into a list of record dicts.

    Blank lines are skipped.  Malformed lines raise :class:`ValueError`
    naming the line number, so CLI callers can exit cleanly.
    """
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})")
            if not isinstance(data, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected an object, got "
                    f"{type(data).__name__}"
                )
            records.append(data)
    return records


def split_streams(
    records: List[Dict[str, Any]],
) -> List[Tuple[str, List[Dict[str, Any]]]]:
    """Group records into per-simulation streams, in order of first
    appearance of each ``sim`` label (unlabeled records form one
    stream)."""
    order: List[str] = []
    streams: Dict[str, List[Dict[str, Any]]] = {}
    for rec in records:
        label = rec.get("sim", "")
        if label not in streams:
            streams[label] = []
            order.append(label)
        streams[label].append(rec)
    return [(label, streams[label]) for label in order]


@dataclass
class Divergence:
    """The first point at which two trace files disagree.

    ``kind`` is ``"field"`` (a record field differs), ``"length"``
    (one stream has more records), or ``"streams"`` (the files hold a
    different number of simulations).  ``vertex`` is set when the
    divergence is attributable to a single message — the sender label
    of the first differing schema-5 detail event.
    """

    kind: str
    sim_a: str = ""
    sim_b: str = ""
    stream: int = 0
    index: int = 0
    round: Optional[int] = None
    field: str = ""
    a_value: Any = None
    b_value: Any = None
    vertex: Optional[str] = None
    message: Optional[Dict[str, Any]] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "stream": self.stream,
            "sim_a": self.sim_a,
            "sim_b": self.sim_b,
            "index": self.index,
            "round": self.round,
            "field": self.field,
            "a": self.a_value,
            "b": self.b_value,
            "detail": self.detail,
        }
        if self.vertex is not None:
            data["vertex"] = self.vertex
        if self.message is not None:
            data["message"] = self.message
        return data

    def render(self) -> str:
        """One human-oriented paragraph pinpointing the divergence."""
        lines = [f"divergence: {self.detail}"]
        if self.round is not None:
            lines.append(f"  round:  {self.round}")
        if self.field:
            lines.append(f"  field:  {self.field}")
        if self.vertex is not None:
            lines.append(f"  vertex: {self.vertex}")
        if self.message is not None:
            lines.append(f"  message: {json.dumps(self.message, sort_keys=True)}")
        if self.field or self.kind != "field":
            lines.append(f"  a: {json.dumps(self.a_value, sort_keys=True)}")
            lines.append(f"  b: {json.dumps(self.b_value, sort_keys=True)}")
        return "\n".join(lines)


def _first_hist_diff(a: Dict, b: Dict) -> Tuple[str, Any, Any]:
    """First differing key of two {str(int): count} histograms, keys
    compared numerically where possible."""

    def keyfn(k):
        try:
            return (0, int(k))
        except (TypeError, ValueError):
            return (1, str(k))

    for k in sorted(set(a) | set(b), key=keyfn):
        if a.get(k) != b.get(k):
            return str(k), a.get(k), b.get(k)
    return "", None, None


def _first_event_diff(
    a: List[Dict], b: List[Dict]
) -> Tuple[int, Optional[Dict], Optional[Dict]]:
    """Index and pair of the first differing detail events."""
    for i in range(max(len(a), len(b))):
        ea = a[i] if i < len(a) else None
        eb = b[i] if i < len(b) else None
        if ea != eb:
            return i, ea, eb
    return -1, None, None


def _diff_records(
    rec_a: Dict[str, Any],
    rec_b: Dict[str, Any],
    ignore: Tuple[str, ...],
) -> Optional[Tuple[str, Any, Any, Optional[str], Optional[Dict]]]:
    """First divergent field of one record pair, or None.

    Returns (field, a value, b value, vertex, message) where vertex /
    message are filled in when the divergence pins down to one detail
    event.
    """
    for name, default in FIELD_ORDER:
        if name in ignore:
            continue
        va = rec_a.get(name, default)
        vb = rec_b.get(name, default)
        if va == vb:
            continue
        if name.endswith("_histogram"):
            key, ha, hb = _first_hist_diff(va or {}, vb or {})
            return (f"{name}[{key}]", ha, hb, None, None)
        if name == "events":
            idx, ea, eb = _first_event_diff(va or [], vb or [])
            sample = ea if ea is not None else eb
            vertex = sample.get("s") if sample else None
            return (f"events[{idx}]", ea, eb, vertex, sample)
        return (name, va, vb, None, None)
    # Unknown extra fields (forward compatibility): compare whatever
    # either side carries beyond the known schema.
    known = {name for name, _ in FIELD_ORDER}
    extras = sorted(
        (set(rec_a) | set(rec_b)) - known - set(ignore)
    )
    for name in extras:
        va = rec_a.get(name)
        vb = rec_b.get(name)
        if va != vb:
            return (name, va, vb, None, None)
    return None


def diff_traces(
    records_a: List[Dict[str, Any]],
    records_b: List[Dict[str, Any]],
    ignore: Tuple[str, ...] = DEFAULT_IGNORE,
) -> Optional[Divergence]:
    """First divergence between two trace files, or None when they
    describe the same execution.

    Streams are paired positionally; within a stream, records are
    compared index by index, fields in :data:`FIELD_ORDER`.
    """
    streams_a = split_streams(records_a)
    streams_b = split_streams(records_b)
    if len(streams_a) != len(streams_b):
        return Divergence(
            kind="streams",
            a_value=[label for label, _ in streams_a],
            b_value=[label for label, _ in streams_b],
            detail=(
                f"file A holds {len(streams_a)} simulation stream(s), "
                f"file B holds {len(streams_b)}"
            ),
        )
    for pos, ((label_a, recs_a), (label_b, recs_b)) in enumerate(
        zip(streams_a, streams_b)
    ):
        for i in range(min(len(recs_a), len(recs_b))):
            found = _diff_records(recs_a[i], recs_b[i], ignore)
            if found is None:
                continue
            fname, va, vb, vertex, message = found
            round_a = recs_a[i].get("round")
            div = Divergence(
                kind="field",
                sim_a=label_a,
                sim_b=label_b,
                stream=pos,
                index=i,
                round=round_a,
                field=fname,
                a_value=va,
                b_value=vb,
                vertex=vertex,
                message=message,
                detail=(
                    f"stream {pos} ({label_a!r} vs {label_b!r}) record "
                    f"{i} (round {round_a}): field {fname} differs"
                ),
            )
            return div
        if len(recs_a) != len(recs_b):
            longer = recs_a if len(recs_a) > len(recs_b) else recs_b
            i = min(len(recs_a), len(recs_b))
            return Divergence(
                kind="length",
                sim_a=label_a,
                sim_b=label_b,
                stream=pos,
                index=i,
                round=longer[i].get("round"),
                a_value=len(recs_a),
                b_value=len(recs_b),
                detail=(
                    f"stream {pos} ({label_a!r} vs {label_b!r}): record "
                    f"counts differ ({len(recs_a)} vs {len(recs_b)}); "
                    f"first unmatched round is {longer[i].get('round')}"
                ),
            )
    return None


# ----------------------------------------------------------------------
# Per-vertex causal provenance (schema-5 detail events)
# ----------------------------------------------------------------------

@dataclass
class VertexRoundReport:
    """What one vertex saw and did around one executed round.

    ``inbound`` lists the detail events attributed to ``round`` whose
    receiver is the vertex — deliveries (and duplicates/corruptions)
    it read this round, plus channel outcomes (drop / delay /
    topo_lost / partitioned) for transmissions that *would* have
    arrived this round.  ``outbound`` lists the events whose sender is
    the vertex from the *next* recorded round — messages sent during
    ``round``, attributed (like all traffic) to the round they deliver
    into.  ``upstream`` optionally chains one report per lineage level
    for the vertices that delivered into this one.
    """

    vertex: str
    round: int
    sim: str = ""
    found: bool = True
    inbound: List[Dict[str, Any]] = field(default_factory=list)
    outbound: List[Dict[str, Any]] = field(default_factory=list)
    upstream: List["VertexRoundReport"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vertex": self.vertex,
            "round": self.round,
            "sim": self.sim,
            "found": self.found,
            "inbound": list(self.inbound),
            "outbound": list(self.outbound),
            "upstream": [r.to_dict() for r in self.upstream],
        }

    def render(self, indent: str = "") -> str:
        lines = [
            f"{indent}vertex {self.vertex} @ round {self.round}"
            + (f" [{self.sim}]" if self.sim else "")
        ]
        if not self.found:
            lines.append(
                f"{indent}  (round {self.round} was not recorded for "
                "this simulation — it may have been fast-forwarded)"
            )
            return "\n".join(lines)
        if self.inbound:
            lines.append(f"{indent}  inbound ({len(self.inbound)}):")
            for e in self.inbound:
                lines.append(f"{indent}    {_render_event(e)}")
        else:
            lines.append(f"{indent}  inbound: none")
        if self.outbound:
            lines.append(f"{indent}  outbound ({len(self.outbound)}):")
            for e in self.outbound:
                lines.append(f"{indent}    {_render_event(e)}")
        else:
            lines.append(f"{indent}  outbound: none")
        for up in self.upstream:
            lines.append(up.render(indent + "  "))
        return "\n".join(lines)


def _render_event(event: Dict[str, Any]) -> str:
    core = (
        f"{event.get('s', '?')} -> {event.get('r', '?')}"
        f"  seq={event.get('q', '?')}"
    )
    if "b" in event:
        core += f"  bits={event['b']}"
    core += f"  [{event.get('o', '?')}]"
    if "sr" in event:
        core += f" (sent round {event['sr']})"
    return core


def _stream_for(
    records: List[Dict[str, Any]], sim: Optional[str]
) -> Tuple[str, List[Dict[str, Any]]]:
    streams = split_streams(records)
    if not streams:
        raise ValueError("trace file holds no records")
    if sim is None:
        if len(streams) > 1:
            labels = ", ".join(repr(label) for label, _ in streams)
            raise ValueError(
                f"trace file holds {len(streams)} simulations "
                f"({labels}); pick one with --sim"
            )
        return streams[0]
    for label, recs in streams:
        if label == sim:
            return label, recs
    # Substring convenience: `--sim fast` selects `fast:n=24`.
    matches = [(label, recs) for label, recs in streams if sim in label]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ValueError(f"no simulation stream matches {sim!r}")
    labels = ", ".join(repr(label) for label, _ in matches)
    raise ValueError(f"--sim {sim!r} is ambiguous: {labels}")


def explain_vertex(
    records: List[Dict[str, Any]],
    vertex: str,
    round_number: int,
    sim: Optional[str] = None,
    depth: int = 0,
) -> VertexRoundReport:
    """Message lineage of one vertex around one executed round.

    Requires schema-5 detail events (record with ``--trace-detail``);
    files without events raise :class:`ValueError` with a hint.
    ``depth`` levels of upstream provenance chase the senders that
    delivered into the vertex back through earlier rounds.
    """
    label, recs = _stream_for(records, sim)
    if not any(r.get("events") for r in recs):
        raise ValueError(
            "trace carries no detail events (schema 5); re-record with "
            "--trace-detail to use explain"
        )
    by_round = {r.get("round"): (i, r) for i, r in enumerate(recs)}
    if round_number not in by_round:
        return VertexRoundReport(
            vertex=vertex, round=round_number, sim=label, found=False
        )
    idx, rec = by_round[round_number]
    inbound = [
        e for e in rec.get("events", []) if e.get("r") == vertex
    ]
    outbound: List[Dict[str, Any]] = []
    if idx + 1 < len(recs):
        nxt = recs[idx + 1]
        # Only same-round sends: a release delivered later was sent
        # earlier than this round (its `sr` says when).
        outbound = [
            e
            for e in nxt.get("events", [])
            if e.get("s") == vertex
            and e.get("sr", round_number) == round_number
        ]
    report = VertexRoundReport(
        vertex=vertex,
        round=round_number,
        sim=label,
        inbound=inbound,
        outbound=outbound,
    )
    if depth > 0:
        senders = []
        for e in inbound:
            s = e.get("s")
            if s is not None and s not in senders:
                senders.append(s)
        prev_rounds = [r.get("round") for r in recs[:idx]]
        if prev_rounds:
            prev_round = prev_rounds[-1]
            for s in senders:
                report.upstream.append(
                    explain_vertex(
                        records, s, prev_round, sim=label, depth=depth - 1
                    )
                )
    return report
