"""Telemetry sinks: JSONL event stream, Prometheus text, terminal report.

All three consume the plain-data registry payload
(:meth:`repro.obs.registry.TelemetryRegistry.to_dict`), so they work
identically on a live registry, a merged cross-process payload, and
the ``telemetry`` section of a saved benchmark snapshot.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, IO, Iterator, List, Optional, Union

from .histogram import FixedHistogram


class JsonlSink:
    """Append telemetry events to a JSONL stream.

    Attach to a registry (``registry.add_sink(sink)``) to receive one
    event per completed span as it happens, and call :meth:`flush_registry`
    at the end to append the aggregate counter/gauge/histogram state.
    Accepts a path (opened lazily, line-buffered) or any writable
    file-like object.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", buffering=1)
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, event: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def flush_registry(self, data: Dict[str, Any]) -> None:
        """Append the aggregate state of a registry payload as events."""
        for event in iter_events(data):
            self.emit(event)

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_events(data: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """One JSONL-able event per aggregate metric in a registry payload."""
    for name in sorted(data.get("counters", {})):
        yield {"event": "counter", "name": name,
               "value": data["counters"][name]}
    for name in sorted(data.get("gauges", {})):
        yield {"event": "gauge", "name": name, "value": data["gauges"][name]}
    for name in sorted(data.get("histograms", {})):
        hist = FixedHistogram.from_dict(data["histograms"][name])
        yield {"event": "histogram", "name": name, **hist.summary()}
    for path in sorted(data.get("spans", {})):
        yield {"event": "span_total", "path": path, **data["spans"][path]}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def prometheus_text(data: Dict[str, Any], prefix: str = "repro") -> str:
    """Render a registry payload in the Prometheus text format.

    Counters become ``<prefix>_<name>_total``, gauges plain gauges,
    histograms the standard ``_bucket``/``_sum``/``_count`` triple with
    cumulative upper-inclusive ``le`` labels, and span aggregates a pair
    of counters labeled by span path.
    """
    lines: List[str] = []
    for name in sorted(data.get("counters", {})):
        metric = f"{prefix}_{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {data['counters'][name]}")
    for name in sorted(data.get("gauges", {})):
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {data['gauges'][name]}")
    for name in sorted(data.get("histograms", {})):
        hist = FixedHistogram.from_dict(data["histograms"][name])
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for i, bound in enumerate(hist.bounds):
            cumulative += hist.buckets[i]
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {hist.total}")
        lines.append(f"{metric}_count {hist.count}")
    spans = data.get("spans", {})
    if spans:
        count_metric = f"{prefix}_span_count_total"
        wall_metric = f"{prefix}_span_wall_seconds_total"
        lines.append(f"# TYPE {count_metric} counter")
        lines.append(f"# TYPE {wall_metric} counter")
        for path in sorted(spans):
            stats = spans[path]
            lines.append(f'{count_metric}{{span="{path}"}} {stats["count"]}')
            lines.append(
                f'{wall_metric}{{span="{path}"}} '
                f'{stats["wall_ns"] / 1e9:.6f}'
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Terminal report
# ----------------------------------------------------------------------

def _rows_to_text(title: str, header: List[str],
                  rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = [title]
    out.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return out


def render_report(
    data: Dict[str, Any],
    suites: Optional[Dict[str, Any]] = None,
) -> str:
    """Human-readable terminal report of a registry payload.

    ``suites`` is the optional per-suite/per-cell timing section of a
    benchmark snapshot (see :mod:`repro.obs.baseline`); when given, a
    cell-timing table is appended.
    """
    sections: List[str] = []

    spans = data.get("spans", {})
    if spans:
        rows = []
        for path in sorted(spans):
            stats = spans[path]
            rows.append([
                path,
                str(stats["count"]),
                f"{stats['wall_ns'] / 1e6:.2f}",
                f"{stats['cpu_ns'] / 1e6:.2f}",
            ])
        sections.extend(_rows_to_text(
            "phase spans", ["span", "count", "wall ms", "cpu ms"], rows
        ))
        sections.append("")

    counters = data.get("counters", {})
    gauges = data.get("gauges", {})
    if counters or gauges:
        rows = [[name, str(counters[name])] for name in sorted(counters)]
        rows.extend(
            [name, str(gauges[name]) + " (gauge)"] for name in sorted(gauges)
        )
        sections.extend(_rows_to_text(
            "counters / gauges", ["name", "value"], rows
        ))
        sections.append("")

    histograms = data.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            hist = FixedHistogram.from_dict(histograms[name])
            summary = hist.summary()
            rows.append([
                name,
                str(summary["count"]),
                f"{summary['mean']:.2f}",
                str(summary["p50"]),
                str(summary["p95"]),
                str(summary["max"]),
            ])
        sections.extend(_rows_to_text(
            "histograms", ["name", "count", "mean", "p50", "p95", "max"], rows
        ))
        sections.append("")

    if suites:
        rows = []
        for suite_name in sorted(suites):
            suite = suites[suite_name]
            for label in sorted(suite.get("cells", {})):
                cell = suite["cells"][label]
                rows.append([label, f"{cell['elapsed']:.4f}"])
            rows.append([
                f"{suite_name} (suite wall)",
                f"{suite.get('wall_seconds', 0.0):.4f}",
            ])
        sections.extend(_rows_to_text(
            "cell timings", ["cell", "seconds"], rows
        ))
        sections.append("")

    if not sections:
        return "telemetry: empty registry\n"
    return "\n".join(sections)
