"""Chrome/Perfetto trace-event export for span timelines.

:class:`~repro.obs.registry.TelemetryRegistry` in timeline mode
records raw span begin/end events — epoch-ns timestamps tagged with
pid/tid.  This module converts that stream into the Chrome trace-event
JSON format (the ``{"traceEvents": [...]}`` object form) that loads
directly in ``chrome://tracing`` and https://ui.perfetto.dev: duration
events (``ph`` ``B``/``E``) on per-process tracks, with metadata
events naming each process and thread.

Timestamps are normalized to microseconds since the earliest event, so
the viewer opens at t=0 instead of the Unix epoch.  Events from
different worker processes share the epoch clock (see
``_Span.__enter__``), so runner cells line up across process tracks.

Nothing here imports from the rest of ``repro`` — the input is the
plain event-dict list ``TelemetryRegistry.to_dict()`` ships across
process boundaries.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

#: ``displayTimeUnit`` accepted by the trace-event spec.
_DISPLAY_UNITS = ("ms", "ns")


def chrome_trace(
    timeline: List[Dict[str, Any]],
    process_label: str = "repro",
) -> Dict[str, Any]:
    """Convert raw begin/end events into a Chrome trace-event object.

    ``timeline`` is the list captured by a registry in timeline mode
    (or the ``"timeline"`` entry of its ``to_dict()`` payload).  The
    result is JSON-serializable; write it to a ``.trace.json`` file
    and load it in chrome://tracing or Perfetto.
    """
    events = sorted(
        (e for e in timeline if e.get("ph") in ("B", "E")),
        key=lambda e: (e.get("ts_ns", 0), e.get("ph") != "E"),
    )
    t0 = events[0]["ts_ns"] if events else 0
    out: List[Dict[str, Any]] = []
    seen_pids: List[int] = []
    seen_tids: List[Tuple[int, int]] = []
    for e in events:
        pid = e.get("pid", 0)
        tid = e.get("tid", 0)
        if pid not in seen_pids:
            seen_pids.append(pid)
        if (pid, tid) not in seen_tids:
            seen_tids.append((pid, tid))
        entry: Dict[str, Any] = {
            "name": e.get("name", ""),
            "cat": "span",
            "ph": e["ph"],
            # Trace-event timestamps are microseconds; keep sub-µs
            # precision as a fraction.
            "ts": (e.get("ts_ns", 0) - t0) / 1000.0,
            "pid": pid,
            "tid": tid,
        }
        out.append(entry)
    # Metadata events name the tracks.  The first pid seen is the
    # coordinating process (the runner); the rest are workers.
    meta: List[Dict[str, Any]] = []
    for i, pid in enumerate(seen_pids):
        name = process_label if i == 0 else f"{process_label} worker {i}"
        meta.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })
    for pid, tid in seen_tids:
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": f"thread {tid}"},
        })
    return {
        "displayTimeUnit": "ms",
        "traceEvents": meta + out,
    }


def validate_chrome_trace(data: Dict[str, Any]) -> List[str]:
    """Structural checks against the trace-event JSON shape.

    Returns a list of problems (empty = valid): object form with a
    ``traceEvents`` list, a legal ``displayTimeUnit``, every event
    carrying ``ph``/``pid``/``tid`` (and ``ts`` for non-metadata
    phases), and ``B``/``E`` pairs balanced per (pid, tid) track with
    matching names — exactly what chrome://tracing enforces loosely
    and Perfetto strictly.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level is not an object"]
    unit = data.get("displayTimeUnit", "ms")
    if unit not in _DISPLAY_UNITS:
        problems.append(
            f"displayTimeUnit {unit!r} not in {_DISPLAY_UNITS}"
        )
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents is missing or not a list"]
    stacks: Dict[Tuple[Any, Any], List[str]] = {}
    last_ts: Dict[Tuple[Any, Any], float] = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = e.get("ph")
        if ph is None:
            problems.append(f"event {i} has no ph")
            continue
        if "pid" not in e or "tid" not in e:
            problems.append(f"event {i} ({ph}) lacks pid/tid")
            continue
        if ph == "M":
            continue
        if not isinstance(e.get("ts"), (int, float)):
            problems.append(f"event {i} ({ph}) lacks a numeric ts")
            continue
        track = (e["pid"], e["tid"])
        if e["ts"] < last_ts.get(track, float("-inf")):
            problems.append(
                f"event {i} ({ph} {e.get('name')!r}) goes backwards in "
                f"time on track {track}"
            )
        last_ts[track] = e["ts"]
        if ph == "B":
            stacks.setdefault(track, []).append(e.get("name", ""))
        elif ph == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(
                    f"event {i}: E with empty stack on track {track}"
                )
            else:
                opened = stack.pop()
                name = e.get("name", "")
                if name and name != opened:
                    problems.append(
                        f"event {i}: E {name!r} closes B {opened!r} on "
                        f"track {track}"
                    )
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: {len(stack)} unclosed B event(s) "
                f"({stack[-1]!r} innermost)"
            )
    return problems


def write_chrome_trace(
    timeline: List[Dict[str, Any]],
    path: str,
    process_label: str = "repro",
) -> Dict[str, Any]:
    """Convert and write a ``.trace.json`` file; returns the object."""
    data = chrome_trace(timeline, process_label=process_label)
    with open(path, "w") as handle:
        json.dump(data, handle)
        handle.write("\n")
    return data


def timeline_from_snapshot(data: Dict[str, Any]) -> Optional[List[Dict]]:
    """Extract the raw timeline from a registry/snapshot payload.

    Accepts either a bare ``TelemetryRegistry.to_dict()`` payload or a
    perf snapshot that nests one under ``"telemetry"``.  Returns None
    when no timeline was recorded.
    """
    if "timeline" in data:
        return data["timeline"] or None
    telemetry = data.get("telemetry")
    if isinstance(telemetry, dict):
        return telemetry.get("timeline") or None
    return None
