"""Fixed-bucket histograms for telemetry distributions.

A :class:`FixedHistogram` folds a stream of non-negative numbers into a
fixed set of upper-inclusive bucket bounds (power-of-two by default, so
the buckets are stable across processes and merges never re-bucket).
It keeps exact ``count`` / ``total`` / ``min`` / ``max`` alongside the
bucketed distribution, supports nearest-rank percentile estimates, and
merges associatively — the property the runner relies on when folding
per-cell telemetry back together in grid order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default upper-inclusive bucket bounds: 1, 2, 4, ..., 2**30.  Values
#: above the last bound land in the implicit overflow bucket.
DEFAULT_BOUNDS: Tuple[int, ...] = tuple(2 ** i for i in range(31))


class FixedHistogram:
    """Counts of observations per fixed bucket; see the module docstring."""

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # One slot per bound plus the overflow bucket.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float, times: int = 1) -> None:
        """Fold ``times`` observations of ``value`` into the histogram."""
        if times <= 0:
            return
        self.buckets[bisect_left(self.bounds, value)] += times
        self.count += times
        self.total += value * times
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate (a bucket upper bound).

        Returns the upper bound of the bucket containing the q-quantile
        observation, clamped to the exact observed ``max`` so the tail
        estimate never exceeds reality.  0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        acc = 0
        for i, bucket_count in enumerate(self.buckets):
            acc += bucket_count
            if acc >= rank:
                bound = (
                    self.bounds[i] if i < len(self.bounds) else self.max
                )
                return min(float(bound), float(self.max))
        return float(self.max)

    def merge(self, other: "FixedHistogram") -> None:
        """Fold ``other`` into this histogram (bounds must match)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, bucket_count in enumerate(other.buckets):
            self.buckets[i] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def summary(self) -> Dict[str, float]:
        """Compact stats for reports: count, mean, p50, p95, min, max."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
        }

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form that survives a process boundary.

        Buckets are stored sparsely, keyed by the stringified upper
        bound (``"+inf"`` for the overflow bucket) so the payload stays
        JSON-stable.
        """
        sparse: Dict[str, int] = {}
        for i, bucket_count in enumerate(self.buckets):
            if bucket_count:
                key = "+inf" if i >= len(self.bounds) else repr(self.bounds[i])
                sparse[key] = bucket_count
        return {
            "bounds": list(self.bounds),
            "buckets": sparse,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FixedHistogram":
        hist = cls(bounds=tuple(data["bounds"]))  # type: ignore[arg-type]
        index_of = {repr(b): i for i, b in enumerate(hist.bounds)}
        index_of["+inf"] = len(hist.bounds)
        for key, bucket_count in dict(data["buckets"]).items():  # type: ignore[arg-type]
            hist.buckets[index_of[str(key)]] = int(bucket_count)
        hist.count = int(data["count"])  # type: ignore[arg-type]
        hist.total = float(data["total"])  # type: ignore[arg-type]
        hist.min = data.get("min")  # type: ignore[assignment]
        hist.max = data.get("max")  # type: ignore[assignment]
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedHistogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"FixedHistogram(count={self.count}, min={self.min}, "
            f"max={self.max})"
        )
