"""Perf-regression baselines: schema-versioned snapshots and diffs.

``repro bench --telemetry out.json`` writes a snapshot of one benchmark
run — per-cell wall clocks, per-suite walls, and the merged telemetry
registry — and ``repro obs diff old.json new.json --budget 1.25``
compares two snapshots, exiting nonzero when any timing regressed past
the budget.  CI runs the diff as a soft gate against a committed seed
baseline (a generous budget keeps it informative rather than flaky
across runner hardware) and uploads every snapshot as a ``BENCH_*``
artifact, so the repo finally accumulates a perf trajectory.

Snapshots carry ``schema`` so future layout changes can migrate or
refuse old files explicitly instead of mis-reading them.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

SNAPSHOT_SCHEMA_VERSION = 1

#: Ignore regressions smaller than this many absolute seconds: tiny
#: cells jitter by scheduler noise far beyond any relative budget.
DEFAULT_MIN_SECONDS = 0.005


def build_snapshot(
    suites: Dict[str, Dict[str, Any]],
    telemetry: Optional[Dict[str, Any]] = None,
    jobs: int = 1,
    cache_enabled: bool = True,
) -> Dict[str, Any]:
    """Assemble a snapshot payload.

    ``suites`` maps suite name to ``{"wall_seconds": float, "cells":
    {label: {"elapsed": float, "attempts": int}}}`` — exactly what
    ``repro bench`` collects; ``telemetry`` is a merged registry
    payload (:meth:`TelemetryRegistry.to_dict`).
    """
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "kind": "repro-telemetry-snapshot",
        "created_unix": round(time.time(), 3),
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "jobs": jobs,
            "cache_enabled": cache_enabled,
        },
        "suites": suites,
        "telemetry": telemetry or {},
    }


def write_snapshot(path: str, snapshot: Dict[str, Any]) -> None:
    # Atomic replace via repro.storage: a crash mid-write must not
    # destroy the previous snapshot at the same path.
    from .. import storage

    text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    storage.atomic_write_text(path, text, verify=True)


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read and validate a snapshot file."""
    with open(path) as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or snapshot.get("kind") != (
        "repro-telemetry-snapshot"
    ):
        raise ValueError(f"{path}: not a repro telemetry snapshot")
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: snapshot schema {schema!r} is not supported "
            f"(this build reads schema {SNAPSHOT_SCHEMA_VERSION})"
        )
    return snapshot


@dataclass
class BaselineDiff:
    """Outcome of comparing two snapshots."""

    budget: float
    regressions: List[Dict[str, Any]] = field(default_factory=list)
    improvements: List[Dict[str, Any]] = field(default_factory=list)
    unchanged: int = 0
    missing: List[str] = field(default_factory=list)  # in old only
    added: List[str] = field(default_factory=list)    # in new only

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (``repro obs diff --json``): the full
        regression/improvement entries with ratios, plus the budget and
        verdict, so CI can annotate instead of grepping text."""
        return {
            "kind": "repro-obs-diff",
            "ok": self.ok,
            "budget": self.budget,
            "regressions": [dict(e) for e in self.regressions],
            "improvements": [dict(e) for e in self.improvements],
            "unchanged": self.unchanged,
            "missing": list(self.missing),
            "added": list(self.added),
        }

    def render(self) -> str:
        lines: List[str] = []
        for item in self.regressions:
            lines.append(
                f"REGRESSION {item['metric']}: "
                f"{item['old']:.4f}s -> {item['new']:.4f}s "
                f"({item['ratio']:.2f}x, budget {self.budget:.2f}x)"
            )
        for item in self.improvements:
            lines.append(
                f"improved   {item['metric']}: "
                f"{item['old']:.4f}s -> {item['new']:.4f}s "
                f"({item['ratio']:.2f}x)"
            )
        if self.missing:
            lines.append(f"missing in new snapshot: {', '.join(self.missing)}")
        if self.added:
            lines.append(f"new in new snapshot: {', '.join(self.added)}")
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{self.unchanged} within budget"
        )
        return "\n".join(lines)


def _timing_series(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a snapshot into comparable ``metric -> seconds`` pairs.

    Besides suite and cell wall clocks, telemetry phase spans flatten
    to ``span:<path>`` seconds, so the diff can budget engine-internal
    phases (e.g. ``congest.collect``, the delivery-accounting phase the
    batched send-plan path exists to shrink) and not just end-to-end
    cells.
    """
    series: Dict[str, float] = {}
    for suite_name, suite in snapshot.get("suites", {}).items():
        series[f"suite:{suite_name}"] = float(suite.get("wall_seconds", 0.0))
        for label, cell in suite.get("cells", {}).items():
            series[f"cell:{label}"] = float(cell.get("elapsed", 0.0))
    spans = snapshot.get("telemetry", {}).get("spans", {})
    for path, stats in spans.items():
        series[f"span:{path}"] = float(stats.get("wall_ns", 0)) / 1e9
    return series


def diff_snapshots(
    old: Dict[str, Any],
    new: Dict[str, Any],
    budget: float = 1.25,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BaselineDiff:
    """Compare two snapshots' timing series against a relative budget.

    A metric regresses when ``new > old * budget`` **and** the absolute
    slowdown exceeds ``min_seconds`` (sub-millisecond cells jitter well
    past any ratio).  Metrics present in only one snapshot are reported
    but never fail the diff — a grid change is a review matter, not a
    perf regression.
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    old_series = _timing_series(old)
    new_series = _timing_series(new)
    diff = BaselineDiff(budget=budget)
    diff.missing = sorted(set(old_series) - set(new_series))
    diff.added = sorted(set(new_series) - set(old_series))
    for metric in sorted(set(old_series) & set(new_series)):
        old_value = old_series[metric]
        new_value = new_series[metric]
        ratio = new_value / old_value if old_value > 0 else float("inf")
        entry = {
            "metric": metric, "old": old_value, "new": new_value,
            "ratio": ratio,
        }
        if (
            new_value > old_value * budget
            and new_value - old_value > min_seconds
        ):
            diff.regressions.append(entry)
        elif (
            old_value > new_value * budget
            and old_value - new_value > min_seconds
        ):
            diff.improvements.append(entry)
        else:
            diff.unchanged += 1
    return diff
