"""The process-global telemetry registry and its module-level helpers.

Everything funnels through one flag check: when telemetry is disabled
(the default), :func:`count`, :func:`gauge`, and :func:`observe` return
after a single boolean test and :func:`span` hands back a shared no-op
context manager — the instrumented hot paths pay one attribute load
and one branch, nothing else.  When enabled, observations land in the
innermost :class:`TelemetryRegistry` on the scope stack, which is the
process-global root unless a :func:`telemetry_scope` is active (the
runner opens one per experiment cell so per-cell telemetry can be
shipped across the process boundary and merged in grid order).

Determinism contract: counters, histogram contents, and the *shape* of
the span tree (paths and counts) are pure functions of the work
performed — identical across the fast and reference CONGEST engines
and across serial and sharded runner executions.  Wall/CPU span times
are of course timing-dependent; :meth:`TelemetryRegistry
.comparable_dict` strips them for equality testing.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .histogram import FixedHistogram


@dataclass
class SpanStats:
    """Accumulated executions of one span path."""

    count: int = 0
    wall_ns: int = 0
    cpu_ns: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "count": self.count,
            "wall_ns": self.wall_ns,
            "cpu_ns": self.cpu_ns,
        }


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The singleton no-op span; safe to reuse because it carries no state.
NO_SPAN = _NoopSpan()


class _Span:
    """One live span: pushes its name on enter, accumulates on exit."""

    __slots__ = ("_registry", "_name", "_path", "_wall0", "_cpu0")

    def __init__(self, registry: "TelemetryRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        stack = self._registry._span_stack
        stack.append(self._name)
        self._path = "/".join(stack)
        timeline = self._registry.timeline
        if timeline is not None:
            # Epoch nanoseconds (not perf_counter) so begin/end streams
            # from different worker processes share one clock and line
            # up on a single Perfetto timeline.
            timeline.append({
                "ph": "B",
                "name": self._path,
                "ts_ns": time.time_ns(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            })
        self._wall0 = time.perf_counter_ns()
        self._cpu0 = time.process_time_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall_ns = time.perf_counter_ns() - self._wall0
        cpu_ns = time.process_time_ns() - self._cpu0
        registry = self._registry
        timeline = registry.timeline
        if timeline is not None:
            timeline.append({
                "ph": "E",
                "name": self._path,
                "ts_ns": time.time_ns(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
            })
        registry._span_stack.pop()
        stats = registry.spans.get(self._path)
        if stats is None:
            stats = registry.spans[self._path] = SpanStats()
        stats.count += 1
        stats.wall_ns += wall_ns
        stats.cpu_ns += cpu_ns
        for sink in registry.sinks:
            sink.emit({
                "event": "span",
                "path": self._path,
                "wall_ns": wall_ns,
                "cpu_ns": cpu_ns,
            })


class TelemetryRegistry:
    """Counters, gauges, histograms, and span aggregates for one scope."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, FixedHistogram] = {}
        self.spans: Dict[str, SpanStats] = {}
        self.sinks: List[Any] = []
        self._span_stack: List[str] = []
        # Optional timeline mode: when enabled, every span additionally
        # appends raw begin/end events here (epoch-ns timestamps with
        # pid/tid), which repro.obs.timeline converts into a
        # Chrome/Perfetto trace-event file.  None = off (default); the
        # span hot path then pays one attribute load per enter/exit.
        self.timeline: Optional[List[Dict[str, Any]]] = None

    def enable_timeline(self) -> None:
        """Start capturing span begin/end events for timeline export."""
        if self.timeline is None:
            self.timeline = []

    # -- recording -----------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> FixedHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = (
                FixedHistogram(bounds) if bounds is not None
                else FixedHistogram()
            )
        return hist

    def observe(self, name: str, value: float, times: int = 1) -> None:
        self.histogram(name).observe(value, times)

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def add_sink(self, sink: Any) -> None:
        """Attach an event sink (anything with ``emit(dict)``)."""
        self.sinks.append(sink)

    # -- cross-process merging -----------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form that survives a process boundary."""
        data = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.histograms.items()
            },
            "spans": {
                path: stats.to_dict() for path, stats in self.spans.items()
            },
        }
        if self.timeline is not None:
            data["timeline"] = [dict(e) for e in self.timeline]
        return data

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a :meth:`to_dict` payload into this registry.

        Counters and span aggregates sum; gauges keep the last write;
        histograms merge bucket-wise.  The fold is associative and
        commutative in everything except gauges, so merging per-cell
        payloads in grid order is deterministic.
        """
        for name, value in data.get("counters", {}).items():
            self.count(name, value)
        for name, value in data.get("gauges", {}).items():
            self.gauge(name, value)
        for name, payload in data.get("histograms", {}).items():
            incoming = FixedHistogram.from_dict(payload)
            existing = self.histograms.get(name)
            if existing is None:
                self.histograms[name] = incoming
            else:
                existing.merge(incoming)
        for path, stats in data.get("spans", {}).items():
            existing_stats = self.spans.get(path)
            if existing_stats is None:
                existing_stats = self.spans[path] = SpanStats()
            existing_stats.count += stats.get("count", 0)
            existing_stats.wall_ns += stats.get("wall_ns", 0)
            existing_stats.cpu_ns += stats.get("cpu_ns", 0)
        # Worker timelines concatenate; events carry their own pid/tid
        # and absolute timestamps, so order within the merged list is
        # irrelevant (the exporter sorts by timestamp).
        incoming_timeline = data.get("timeline")
        if incoming_timeline:
            if self.timeline is None:
                self.timeline = []
            self.timeline.extend(dict(e) for e in incoming_timeline)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryRegistry":
        registry = cls()
        registry.merge_dict(data)
        return registry

    def comparable_dict(self) -> Dict[str, Any]:
        """The deterministic projection: everything except timings.

        Span values reduce to their execution counts; wall/CPU fields
        are dropped.  ``congest.kernel.*`` and ``congest.delivery.*``
        counters are dropped too: they describe *how* the work was
        executed (columnar kernel vs scalar loop, batched vs scalar
        delivery), not what was simulated, and those layers' contract
        is precisely that the executions are otherwise
        indistinguishable.  Two runs doing identical work — fast vs
        reference engine, kernels on vs off, batched delivery on vs
        off, serial vs sharded — produce equal comparable dicts.
        """
        data = self.to_dict()
        # Timeline events are raw timings — never comparable.
        data.pop("timeline", None)
        data["spans"] = {
            path: stats["count"] for path, stats in data["spans"].items()
        }
        data["counters"] = {
            name: value
            for name, value in data["counters"].items()
            if not name.startswith(("congest.kernel.", "congest.delivery."))
        }
        return data

    def __bool__(self) -> bool:
        return bool(
            self.counters or self.gauges or self.histograms or self.spans
        )


# ----------------------------------------------------------------------
# Module-level state: the enable flag and the scope stack
# ----------------------------------------------------------------------

_enabled = False
_stack: List[TelemetryRegistry] = [TelemetryRegistry()]


def enabled() -> bool:
    """Is telemetry currently recording?"""
    return _enabled


def enable() -> None:
    """Turn telemetry on for the current scope (process-global root
    unless a :func:`telemetry_scope` is active)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def current_registry() -> TelemetryRegistry:
    """The registry observations currently land in."""
    return _stack[-1]


def reset() -> None:
    """Replace the root registry with a fresh one (testing hook)."""
    _stack[0] = TelemetryRegistry()


def count(name: str, value: float = 1) -> None:
    """Increment a counter in the active registry (no-op when disabled)."""
    if _enabled:
        _stack[-1].count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge in the active registry (no-op when disabled)."""
    if _enabled:
        _stack[-1].gauge(name, value)


def observe(name: str, value: float, times: int = 1) -> None:
    """Histogram observation in the active registry (no-op when disabled)."""
    if _enabled:
        _stack[-1].observe(name, value, times)


def span(name: str):
    """A phase span context manager; :data:`NO_SPAN` when disabled.

    The disabled path is one flag test and a shared constant — cheap
    enough to leave in pipeline loops.
    """
    if not _enabled:
        return NO_SPAN
    return _stack[-1].span(name)


@contextmanager
def telemetry_scope(
    record: bool = True, timeline: bool = False
) -> Iterator[TelemetryRegistry]:
    """Collect telemetry into a fresh registry for the enclosed block.

    Used by the runner to give each experiment cell its own registry
    (identical behavior inline and in a worker process), and by tests
    for isolation.  The previous enable state and registry are restored
    on exit, so scopes nest freely.  ``timeline=True`` additionally
    captures span begin/end events for Chrome/Perfetto export.
    """
    global _enabled
    registry = TelemetryRegistry()
    if timeline:
        registry.enable_timeline()
    _stack.append(registry)
    previous = _enabled
    _enabled = record
    try:
        yield registry
    finally:
        _enabled = previous
        _stack.pop()
