"""Classic graph families.

These serve three roles in the experiment suite: easy sanity instances
(paths, cycles, grids), extremal instances the paper discusses (cycles
witness the O(1/epsilon) LDD diameter lower bound; hypercubes witness
the Omega(eps/log n) conductance bound for expander decompositions),
and non-minor-free instances (cliques, random graphs) used as negative
controls for the property tester.
"""

from __future__ import annotations

from itertools import combinations

from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng


def path_graph(n: int) -> Graph:
    """The path on vertices ``0..n-1``."""
    if n < 0:
        raise GraphError("n must be non-negative")
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(n - 1):
        g.add_edge(v, v + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """The cycle on vertices ``0..n-1`` (requires n >= 3)."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(leaves: int) -> Graph:
    """Star with center 0 and ``leaves`` leaves ``1..leaves``."""
    if leaves < 0:
        raise GraphError("leaves must be non-negative")
    g = Graph()
    g.add_vertex(0)
    for v in range(1, leaves + 1):
        g.add_edge(0, v)
    return g


def complete_graph(n: int) -> Graph:
    """K_n on vertices ``0..n-1``."""
    if n < 0:
        raise GraphError("n must be non-negative")
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u, v in combinations(range(n), 2):
        g.add_edge(u, v)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b}; left side ``0..a-1``, right side ``a..a+b-1``."""
    if a < 0 or b < 0:
        raise GraphError("part sizes must be non-negative")
    g = Graph()
    for v in range(a + b):
        g.add_vertex(v)
    for u in range(a):
        for v in range(a, a + b):
            g.add_edge(u, v)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """The rows x cols grid; vertex (r, c) is numbered ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex(r * cols + c)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def hypercube_graph(dimension: int) -> Graph:
    """The d-dimensional hypercube Q_d on ``2**d`` vertices.

    Hypercubes are the paper's witness (Section 2, citing [4]) that the
    phi = Omega(eps / log n) trade-off of expander decompositions is
    tight: after removing any constant fraction of edges, some
    component has conductance O(1/log n).
    """
    if dimension < 0:
        raise GraphError("dimension must be non-negative")
    g = Graph()
    for v in range(1 << dimension):
        g.add_vertex(v)
    for v in range(1 << dimension):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                g.add_edge(v, u)
    return g


def gnp_random_graph(n: int, p: float, seed: SeedLike = None) -> Graph:
    """Erdos–Renyi G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must lie in [0, 1]")
    rng = ensure_rng(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u, v in combinations(range(n), 2):
        if rng.random() < p:
            g.add_edge(u, v)
    return g


def random_tree(n: int, seed: SeedLike = None) -> Graph:
    """A uniformly random labeled tree via a random Pruefer sequence."""
    if n < 1:
        raise GraphError("a tree needs at least one vertex")
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    if n == 1:
        return g
    if n == 2:
        g.add_edge(0, 1)
        return g
    rng = ensure_rng(seed)
    pruefer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in pruefer:
        degree[v] += 1
    # Standard Pruefer decoding: repeatedly join the smallest leaf to
    # the next sequence element.
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in pruefer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, v)
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g
