"""Planar graph generators.

Planar graphs are the paper's flagship graph class (Theorem 3.2 and the
planarity property tester of Theorem 1.4 are stated for them).  We
provide deterministic planar families (grids, triangulated grids) and
random ones (Delaunay triangulations of random points, edge-subsampled
triangulations, maximal outerplanar graphs).  All outputs are planar by
construction; the test suite re-checks them with both our own Left-Right
planarity test and networkx.
"""

from __future__ import annotations

try:
    from scipy.spatial import Delaunay
except ImportError:  # pragma: no cover - the no-NumPy/SciPy CI leg
    Delaunay = None

from ..errors import GraphError
from ..graph import Graph
from ..rng import NumpySeedLike, SeedLike, ensure_numpy_rng, ensure_rng
from .classic import grid_graph


def triangulated_grid_graph(rows: int, cols: int) -> Graph:
    """A grid with one diagonal per cell — a planar near-triangulation.

    Denser than the plain grid (average degree approaching 6), which
    makes it a stronger instance for the decomposition experiments.
    """
    g = grid_graph(rows, cols)
    for r in range(rows - 1):
        for c in range(cols - 1):
            v = r * cols + c
            g.add_edge(v, v + cols + 1)
    return g


def delaunay_planar_graph(n: int, seed: NumpySeedLike = None) -> Graph:
    """Delaunay triangulation of ``n`` uniformly random points.

    Delaunay triangulations are the standard "random planar network"
    model (road networks, sensor networks); they are planar and nearly
    maximal (|E| close to 3n - 6).
    """
    if n < 3:
        raise GraphError("a Delaunay triangulation needs at least 3 points")
    if Delaunay is None:
        raise GraphError(
            "delaunay_planar_graph requires numpy and scipy; use a "
            "deterministic planar family (grid_graph, "
            "triangulated_grid_graph) instead"
        )
    rng = ensure_numpy_rng(seed)
    points = rng.random((n, 2))
    tri = Delaunay(points)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        g.add_edge(a, b)
        g.add_edge(b, c)
        g.add_edge(a, c)
    return g


def random_planar_graph(
    n: int, edge_fraction: float = 0.7, seed: SeedLike = None
) -> Graph:
    """A random planar graph: a Delaunay triangulation with edges subsampled.

    ``edge_fraction`` of the triangulation's edges are kept (a spanning
    tree is always kept first so the result stays connected).
    """
    if not 0.0 <= edge_fraction <= 1.0:
        raise GraphError("edge_fraction must lie in [0, 1]")
    rng = ensure_rng(seed)
    base = delaunay_planar_graph(n, seed=rng.getrandbits(64))
    edges = base.edges()
    rng.shuffle(edges)

    # Kruskal-style spanning forest to preserve connectivity.
    parent = {v: v for v in base.vertices()}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    keep = []
    extra = []
    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            keep.append((u, v))
        else:
            extra.append((u, v))

    budget = max(0, int(round(edge_fraction * len(edges))) - len(keep))
    keep.extend(extra[:budget])

    g = Graph()
    for v in base.vertices():
        g.add_vertex(v)
    for u, v in keep:
        g.add_edge(u, v)
    return g


def maximal_outerplanar_graph(n: int, seed: SeedLike = None) -> Graph:
    """A random maximal outerplanar graph (triangulated convex polygon).

    Built by recursively triangulating the polygon ``0..n-1`` with
    random diagonals.  Outerplanar graphs are K_4-minor-free and
    K_{2,3}-minor-free, making them the smallest non-trivial
    minor-closed class the property tester handles.
    """
    if n < 3:
        raise GraphError("an outerplanar triangulation needs >= 3 vertices")
    rng = ensure_rng(seed)
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for v in range(n):
        g.add_edge(v, (v + 1) % n)

    def triangulate(lo: int, hi: int) -> None:
        # Triangulate the polygon chord (lo, hi) over vertices lo..hi.
        if hi - lo < 2:
            return
        mid = rng.randrange(lo + 1, hi)
        if not g.has_edge(lo, mid):
            g.add_edge(lo, mid)
        if not g.has_edge(mid, hi):
            g.add_edge(mid, hi)
        triangulate(lo, mid)
        triangulate(mid, hi)

    triangulate(0, n - 1)
    return g
