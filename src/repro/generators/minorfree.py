"""Generators for non-planar minor-closed graph classes.

The paper's results hold for *any* H-minor-free class, so the
experiment suite needs instances beyond planar graphs: bounded
treewidth (k-trees and partial k-trees, which are K_{k+2}-minor-free),
bounded genus (toroidal grids), and apex graphs (planar plus one
universal-ish vertex, which are K_6-minor-free when the base is
planar).
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng
from .planar import delaunay_planar_graph


def k_tree(n: int, k: int, seed: SeedLike = None) -> Graph:
    """A random k-tree on ``n`` vertices.

    Construction: start with K_{k+1}; each new vertex is attached to a
    uniformly random existing k-clique.  k-trees have treewidth exactly
    ``k`` and are K_{k+2}-minor-free, so they exercise the framework on
    a minor-free class with unbounded genus.
    """
    if k < 1:
        raise GraphError("k must be at least 1")
    if n < k + 1:
        raise GraphError(f"a {k}-tree needs at least {k + 1} vertices")
    rng = ensure_rng(seed)
    g = Graph()
    base = list(range(k + 1))
    for v in base:
        g.add_vertex(v)
    for u, v in combinations(base, 2):
        g.add_edge(u, v)
    # Track all k-cliques available for attachment.
    cliques: List[Tuple[int, ...]] = [tuple(c) for c in combinations(base, k)]
    for v in range(k + 1, n):
        attach = rng.choice(cliques)
        for u in attach:
            g.add_edge(v, u)
        for sub in combinations(attach, k - 1):
            cliques.append(tuple(sorted(sub + (v,))))
    return g


def partial_k_tree(
    n: int, k: int, edge_fraction: float = 0.7, seed: SeedLike = None
) -> Graph:
    """A connected random subgraph of a k-tree (treewidth <= k).

    Partial k-trees are exactly the graphs of treewidth at most k; they
    model sparse networks with tree-like backbone structure.  A
    spanning tree of the k-tree is always kept so the result is
    connected.
    """
    if not 0.0 <= edge_fraction <= 1.0:
        raise GraphError("edge_fraction must lie in [0, 1]")
    rng = ensure_rng(seed)
    base = k_tree(n, k, seed=rng.getrandbits(64))
    edges = base.edges()
    rng.shuffle(edges)

    parent = {v: v for v in base.vertices()}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    keep = []
    extra = []
    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            keep.append((u, v))
        else:
            extra.append((u, v))
    budget = max(0, int(round(edge_fraction * len(edges))) - len(keep))
    keep.extend(extra[:budget])

    g = Graph()
    for v in base.vertices():
        g.add_vertex(v)
    for u, v in keep:
        g.add_edge(u, v)
    return g


def series_parallel_graph(n: int, seed: SeedLike = None) -> Graph:
    """A random series-parallel (treewidth-2) graph — a partial 2-tree."""
    return partial_k_tree(n, 2, edge_fraction=0.85, seed=seed)


def toroidal_grid_graph(rows: int, cols: int) -> Graph:
    """The rows x cols grid on the torus (wrap-around in both axes).

    Genus-1 and generally non-planar, but still H-minor-free for a
    fixed H (bounded-genus graphs exclude large cliques), so it is the
    suite's bounded-genus representative.
    """
    if rows < 3 or cols < 3:
        raise GraphError("toroidal grid needs both dimensions >= 3")
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex(r * cols + c)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g


def apex_graph(
    n: int, apex_degree_fraction: float = 0.5, seed: SeedLike = None
) -> Graph:
    """A planar graph plus one apex vertex joined to a random subset.

    Apex graphs (planar + one vertex) are K_6-minor-free; they are a
    classic example of a minor-closed class strictly between planar and
    general graphs.  The apex is vertex ``n - 1``.
    """
    if n < 4:
        raise GraphError("an apex graph needs at least 4 vertices")
    if not 0.0 < apex_degree_fraction <= 1.0:
        raise GraphError("apex_degree_fraction must lie in (0, 1]")
    rng = ensure_rng(seed)
    g = delaunay_planar_graph(n - 1, seed=rng.getrandbits(64))
    apex = n - 1
    g.add_vertex(apex)
    others = [v for v in g.vertices() if v != apex]
    count = max(1, int(round(apex_degree_fraction * len(others))))
    for v in rng.sample(others, count):
        g.add_edge(apex, v)
    return g
