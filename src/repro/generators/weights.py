"""Edge weight and edge sign workload generators.

The MWM experiments (Theorem 1.1) need positive integer weights with a
controllable maximum W, matching the paper's assumption.  The
correlation clustering experiments (Theorem 1.3) need +/- edge labels;
:func:`planted_signs` produces the classic planted-partition workload
(intra-community edges positive, inter-community negative, with noise)
that motivates the problem's applications.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..errors import GraphError
from ..graph import Graph, Vertex, edge_key
from ..rng import SeedLike, ensure_rng

Sign = int  # +1 or -1
SignMap = Dict[Tuple[Vertex, Vertex], Sign]


def random_integer_weights(
    graph: Graph, max_weight: int, seed: SeedLike = None
) -> Graph:
    """Copy of ``graph`` with i.i.d. uniform weights in {1, ..., W}."""
    if max_weight < 1:
        raise GraphError("max_weight must be a positive integer")
    rng = ensure_rng(seed)
    g = Graph()
    for v in graph.vertices():
        g.add_vertex(v)
    for u, v in graph.edges():
        g.add_edge(u, v, float(rng.randint(1, max_weight)))
    return g


def with_weights(graph: Graph, weights: Dict[Tuple[Vertex, Vertex], float]) -> Graph:
    """Copy of ``graph`` with explicit per-edge weights.

    ``weights`` is keyed by canonical edge keys; missing edges keep
    their current weight.
    """
    g = graph.copy()
    for (u, v), w in weights.items():
        if not g.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        g.add_edge(u, v, w)
    return g


def random_signs(graph: Graph, positive_fraction: float = 0.5, seed: SeedLike = None) -> SignMap:
    """Label each edge +1 with the given probability, else -1."""
    if not 0.0 <= positive_fraction <= 1.0:
        raise GraphError("positive_fraction must lie in [0, 1]")
    rng = ensure_rng(seed)
    return {
        edge_key(u, v): (1 if rng.random() < positive_fraction else -1)
        for u, v in graph.edges()
    }


def planted_signs(
    graph: Graph,
    communities: int,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> Tuple[SignMap, Dict[Vertex, int]]:
    """Planted-partition edge signs.

    Vertices are assigned to ``communities`` groups uniformly at
    random; intra-community edges are labeled +1 and inter-community
    edges -1, then each label is flipped independently with probability
    ``noise``.  Returns ``(signs, ground_truth_community)``.
    """
    if communities < 1:
        raise GraphError("need at least one community")
    if not 0.0 <= noise <= 1.0:
        raise GraphError("noise must lie in [0, 1]")
    rng = ensure_rng(seed)
    community = {v: rng.randrange(communities) for v in graph.vertices()}
    signs: SignMap = {}
    for u, v in graph.edges():
        sign = 1 if community[u] == community[v] else -1
        if rng.random() < noise:
            sign = -sign
        signs[edge_key(u, v)] = sign
    return signs, community
