"""Graph and workload generators.

The paper evaluates nothing empirically, so the experiment suite needs
workloads spanning the graph classes the paper names: planar graphs,
bounded-genus graphs, bounded-treewidth graphs, and general
H-minor-free graphs — plus the adversarial instances used by its
remarks (hypercubes for the decomposition lower bound, cycles for LDD
optimality).  Everything here is seeded and deterministic.
"""

from .classic import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_tree,
    star_graph,
)
from .planar import (
    delaunay_planar_graph,
    maximal_outerplanar_graph,
    random_planar_graph,
    triangulated_grid_graph,
)
from .minorfree import (
    apex_graph,
    k_tree,
    partial_k_tree,
    series_parallel_graph,
    toroidal_grid_graph,
)
from .weights import (
    planted_signs,
    random_integer_weights,
    random_signs,
    with_weights,
)

__all__ = [
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "gnp_random_graph",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "random_tree",
    "star_graph",
    "delaunay_planar_graph",
    "maximal_outerplanar_graph",
    "random_planar_graph",
    "triangulated_grid_graph",
    "apex_graph",
    "k_tree",
    "partial_k_tree",
    "series_parallel_graph",
    "toroidal_grid_graph",
    "planted_signs",
    "random_integer_weights",
    "random_signs",
    "with_weights",
]
