"""Spectral and combinatorial expansion toolkit.

Everything in Section 2 of the paper that is about *measuring*
expansion lives here: conductance (exact and spectrally certified),
lazy random walks and mixing times, sweep cuts, and the balanced edge
separators of Theorem 1.6.
"""

from .conductance import (
    cheeger_bounds,
    conductance_lower_bound,
    exact_conductance,
    fiedler_vector,
    normalized_laplacian,
    spectral_gap,
    sweep_cut,
)
from .random_walk import (
    lazy_walk_matrix,
    mixing_time_bound,
    mixing_time_exact,
    simulate_lazy_walk,
    stationary_distribution,
)
from .separators import balanced_edge_separator, separator_quality
from .gadgets import exact_sparsity, expander_gadget, split_vertices

__all__ = [
    "cheeger_bounds",
    "conductance_lower_bound",
    "exact_conductance",
    "fiedler_vector",
    "normalized_laplacian",
    "spectral_gap",
    "sweep_cut",
    "lazy_walk_matrix",
    "mixing_time_bound",
    "mixing_time_exact",
    "simulate_lazy_walk",
    "stationary_distribution",
    "balanced_edge_separator",
    "separator_quality",
    "exact_sparsity",
    "expander_gadget",
    "split_vertices",
]
