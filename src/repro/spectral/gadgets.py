"""Vertex splitting into constant-degree expander gadgets (Lemma 2.5).

The deterministic routing of Lemma 2.5 preprocesses each cluster G_i by
replacing every vertex v with a deg(v)-vertex gadget X_v of Theta(1)
conductance and Theta(1) maximum degree, attaching v's edges to
distinct gadget vertices.  The resulting graph G'_i has maximum degree
O(1) and sparsity Psi(G'_i) = Theta(Phi(G_i)) ([20, Lemma C.2]), which
is what lets flow-based routing run on it.

We implement the transformation (the paper's flow machinery itself is
out of scope — see docs/theorems.md), using the classic
cycle-plus-random-matching construction for the gadgets (w.h.p. an
expander; the test suite certifies each gadget's spectral gap), and an
exact sparsity computation so the Theta relation can be measured on
small instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Optional, Set, Tuple

from ..errors import GraphError, SolverError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng

#: Largest vertex count for which exact (2^n) sparsity is allowed.
EXACT_SPARSITY_LIMIT = 20


def expander_gadget(size: int, seed: SeedLike = None) -> Graph:
    """A Theta(1)-conductance, max-degree <= 5 graph on ``size`` vertices.

    For size <= 4 the complete graph; otherwise a cycle plus a random
    perfect matching on vertex positions (the classic whp-expander
    construction), retried until connected with a positive spectral
    gap.
    """
    if size < 1:
        raise GraphError("gadget size must be positive")
    if size <= 4:
        g = Graph()
        for v in range(size):
            g.add_vertex(v)
        for u, v in combinations(range(size), 2):
            g.add_edge(u, v)
        return g
    rng = ensure_rng(seed)
    for _attempt in range(20):
        g = Graph()
        for v in range(size):
            g.add_vertex(v)
        for v in range(size):
            g.add_edge(v, (v + 1) % size)
        order = list(range(size))
        rng.shuffle(order)
        for i in range(0, size - 1, 2):
            u, v = order[i], order[i + 1]
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v)
        if g.is_connected():
            return g
    raise SolverError("failed to build a connected gadget")


def split_vertices(
    graph: Graph, seed: SeedLike = None
) -> Tuple[Graph, Dict]:
    """Replace each vertex by an expander gadget (the G' of Lemma 2.5).

    Returns ``(split_graph, ports)`` where ``ports[(u, v)]`` is the
    gadget vertex of u that carries the original edge {u, v}.  Gadget
    vertices are labeled ``(v, i)`` for ``i < deg(v)`` (isolated
    vertices keep a single ``(v, 0)`` node).  The split graph has
    maximum degree <= 7 (gadget degree <= 5 plus the attached edge,
    with slack for tiny gadgets).
    """
    rng = ensure_rng(seed)
    split = Graph()
    ports: Dict = {}

    for v in graph.vertices():
        degree = max(1, graph.degree(v))
        gadget = expander_gadget(degree, seed=rng.getrandbits(64))
        for i in gadget.vertices():
            split.add_vertex((v, i))
        for a, b in gadget.edges():
            split.add_edge((v, a), (v, b))
        for i, u in enumerate(sorted(graph.neighbors(v), key=repr)):
            ports[(v, u)] = (v, i)

    for u, v in graph.edges():
        split.add_edge(ports[(u, v)], ports[(v, u)], graph.weight(u, v))
    return split, ports


def exact_sparsity(graph: Graph) -> Tuple[float, Set]:
    """Brute-force Psi(G) = min |boundary(S)| / min(|S|, |V \\ S|)."""
    if graph.n > EXACT_SPARSITY_LIMIT:
        raise SolverError(
            f"exact sparsity is limited to n <= {EXACT_SPARSITY_LIMIT}"
        )
    if graph.n < 2:
        raise GraphError("sparsity needs at least two vertices")
    vertices = graph.vertices()
    anchor = vertices[0]
    rest = vertices[1:]
    best = float("inf")
    best_cut: Set = set()
    for r in range(len(rest) + 1):
        for combo in combinations(rest, r):
            s = {anchor, *combo}
            if len(s) == graph.n:
                continue
            value = graph.sparsity_of_cut(s)
            if value < best:
                best = value
                best_cut = s
    return best, best_cut
