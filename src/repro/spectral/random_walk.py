"""Lazy random walks and mixing times (Section 2, "Mixing Time").

The paper's routing lemma (Lemma 2.4) rides on the fact that a lazy
random walk on a phi-expander mixes in O(phi^-2 log n) steps.  This
module provides the matrix form of the walk, the exact mixing time by
the paper's definition (for small graphs), the spectral estimate used
at scale, and a message-free single-walk simulator used by tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-NumPy CI leg
    np = None

from ..errors import GraphError, SolverError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng

#: Largest vertex count for which the exact O(n^3 t) mixing time runs.
EXACT_MIXING_LIMIT = 512


def lazy_walk_matrix(graph: Graph, order: Optional[List] = None) -> np.ndarray:
    """P = 1/2 I + 1/2 A D^{-1}, columns indexed by the current vertex.

    Row u of ``P @ p`` is exactly the paper's update
    ``p_i(u) = p_{i-1}(u)/2 + sum_w p_{i-1}(w) / (2 deg(w))``.
    """
    if np is None:
        raise SolverError("random-walk matrices require numpy")
    if order is None:
        order = graph.vertices()
    a = graph.adjacency_matrix(order)
    deg = a.sum(axis=0)
    if np.any(deg == 0) and graph.n > 1:
        raise GraphError("lazy walks need a graph without isolated vertices")
    p = 0.5 * np.eye(graph.n) + 0.5 * (a / np.maximum(deg, 1.0)[None, :])
    return p


def stationary_distribution(graph: Graph, order: Optional[List] = None) -> np.ndarray:
    """pi(u) = deg(u) / vol(V) — the walk's unique fixed point."""
    if order is None:
        order = graph.vertices()
    if graph.m == 0:
        raise GraphError("stationary distribution undefined without edges")
    deg = np.array([graph.degree(v) for v in order], dtype=float)
    return deg / (2.0 * graph.m)


def mixing_time_exact(graph: Graph, max_steps: int = 1_000_000) -> int:
    """tau_mix per the paper: min t with |p_t^v(u) - pi(u)| <= pi(u)/n for all u, v.

    Computed by powering the walk matrix (each column of P^t is p_t^v),
    so intended for cluster-sized graphs.
    """
    if graph.n > EXACT_MIXING_LIMIT:
        raise SolverError(
            f"exact mixing time is limited to n <= {EXACT_MIXING_LIMIT}"
        )
    if not graph.is_connected():
        raise GraphError("mixing time is defined for connected graphs")
    if graph.n == 1:
        return 0
    order = graph.vertices()
    p = lazy_walk_matrix(graph, order)
    pi = stationary_distribution(graph, order)
    tolerance = pi / graph.n
    state = np.eye(graph.n)
    for t in range(1, max_steps + 1):
        state = p @ state
        if np.all(np.abs(state - pi[:, None]) <= tolerance[:, None] + 1e-15):
            return t
    raise SolverError(f"walk did not mix within {max_steps} steps")


def mixing_time_bound(graph: Graph) -> float:
    """Spectral upper estimate O(log|V| / Phi^2) via the Cheeger bound.

    Uses ``tau <= 2 log(n / pi_min) / gap`` with ``gap`` the spectral
    gap of the lazy walk (= lambda_2(normalized Laplacian) / 2).
    """
    from .conductance import spectral_gap

    if graph.n < 2:
        return 0.0
    gap = spectral_gap(graph) / 2.0
    if gap <= 0:
        return float("inf")
    pi_min = graph.min_degree() / (2.0 * graph.m) if graph.m else 1.0
    return float(2.0 * np.log(graph.n / max(pi_min, 1e-12)) / gap)


def simulate_lazy_walk(
    graph: Graph, start, steps: int, seed: SeedLike = None
) -> List:
    """Trajectory of one lazy random walk (start included, length steps+1)."""
    if start not in graph:
        raise GraphError(f"start vertex {start!r} not in graph")
    rng = ensure_rng(seed)
    path = [start]
    current = start
    for _ in range(steps):
        if rng.random() < 0.5 or graph.degree(current) == 0:
            path.append(current)
            continue
        current = rng.choice(graph.neighbors(current))
        path.append(current)
    return path


def hitting_fraction(
    graph: Graph,
    target,
    walk_length: int,
    trials: int,
    seed: SeedLike = None,
) -> float:
    """Fraction of random-start walks that visit ``target``.

    Empirical counterpart of the Lemma 2.4 argument that a walk of
    length O(phi^-2 log n) segments hits the high-degree vertex with
    probability Omega(phi^2) per segment.
    """
    rng = ensure_rng(seed)
    vertices = graph.vertices()
    hits = 0
    for _ in range(trials):
        start = rng.choice(vertices)
        path = simulate_lazy_walk(graph, start, walk_length, seed=rng)
        if target in path:
            hits += 1
    return hits / trials if trials else 0.0
