"""Conductance: exact computation, spectral certificates, sweep cuts.

The expander decomposition needs two directions of evidence about a
cluster G_i:

* an *upper bound* witness — a concrete low-conductance cut, found by a
  sweep over the Fiedler vector, telling the decomposition where to
  split; and
* a *lower bound* certificate — Cheeger's inequality
  ``Phi(G) >= lambda_2 / 2`` on the normalized Laplacian, proving that
  a finished cluster really is a phi-expander.

Exact conductance (brute force over all cuts) is provided for small
graphs and is what the test suite pins both bounds against.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Set, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-NumPy CI leg
    np = None

from ..errors import GraphError, SolverError
from ..graph import Graph

#: Largest vertex count for which exact (2^n) conductance is allowed.
EXACT_CONDUCTANCE_LIMIT = 20

#: Matrix size above which only the two smallest eigenpairs are computed
#: (LAPACK ``syevr`` range selection) instead of the full spectrum.
_PARTIAL_EIGH_MIN_N = 64

try:
    from scipy.linalg import eigh as _scipy_eigh
except ImportError:  # pragma: no cover - scipy ships with the toolchain
    _scipy_eigh = None


def _smallest_two(lap: np.ndarray, vectors: bool):
    """Eigenvalues (and optionally vectors) for the two smallest pairs.

    Large Laplacians only ever need ``lambda_2`` and its eigenvector, so
    restricting the solve to the bottom of the spectrum avoids the full
    O(n^3) dense eigendecomposition on big clusters.
    """
    if _scipy_eigh is not None and lap.shape[0] >= _PARTIAL_EIGH_MIN_N:
        return _scipy_eigh(
            lap, subset_by_index=[0, 1], eigvals_only=not vectors
        )
    if vectors:
        return np.linalg.eigh(lap)
    return np.linalg.eigvalsh(lap)


def exact_conductance(graph: Graph) -> Tuple[float, Set]:
    """Brute-force Phi(G) and an optimal cut; exponential, small n only.

    Subsets are walked as adjacency bitmasks (cut size and volume come
    from ``int.bit_count`` instead of set algebra), which makes the
    2^n sweep cheap enough that the expander decomposition can afford
    exact certificates for every small cluster.  Enumeration order and
    tie-breaking match the original set-based implementation exactly.
    """
    if graph.n > EXACT_CONDUCTANCE_LIMIT:
        raise SolverError(
            f"exact conductance is limited to n <= {EXACT_CONDUCTANCE_LIMIT}"
        )
    if graph.n < 2:
        raise GraphError("conductance needs at least two vertices")
    vertices = graph.vertices()
    n = graph.n
    index = {v: i for i, v in enumerate(vertices)}
    degrees = [graph.degree(v) for v in vertices]
    adj_masks = []
    for v in vertices:
        mask = 0
        for u in graph.neighbors(v):
            mask |= 1 << index[u]
        adj_masks.append(mask)
    total_volume = 2 * graph.m
    full = (1 << n) - 1

    best = float("inf")
    best_mask = 0
    anchor_deg = degrees[0]
    anchor_adj = adj_masks[0]
    # It suffices to enumerate subsets containing vertices[0] (cut
    # symmetry) of size 1..n-1.
    rest = list(range(1, n))
    for r in range(len(rest) + 1):
        if r + 1 == n:
            continue
        for combo in combinations(rest, r):
            mask = 1
            vol_s = anchor_deg
            for i in combo:
                mask |= 1 << i
                vol_s += degrees[i]
            complement = full & ~mask
            other = min(vol_s, total_volume - vol_s)
            if other == 0:
                # A side with zero volume is a disconnection witness.
                phi = 0.0
            else:
                cut = (anchor_adj & complement).bit_count()
                for i in combo:
                    cut += (adj_masks[i] & complement).bit_count()
                phi = cut / other
            if phi < best:
                best = phi
                best_mask = mask
    best_cut = {vertices[i] for i in range(n) if best_mask >> i & 1}
    return best, best_cut


def normalized_laplacian(graph: Graph, order: Optional[List] = None) -> np.ndarray:
    """L = I - D^{-1/2} A D^{-1/2}; isolated vertices get L[i, i] = 0."""
    if np is None:
        raise SolverError("spectral routines require numpy")
    if order is None:
        order = graph.vertices()
    a = graph.adjacency_matrix(order)
    deg = a.sum(axis=1)
    with np.errstate(divide="ignore"):
        d_inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-300)), 0.0)
    lap = -a * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]
    np.fill_diagonal(lap, np.where(deg > 0, 1.0, 0.0))
    return lap


def spectral_gap(graph: Graph) -> float:
    """lambda_2 of the normalized Laplacian (0 iff disconnected)."""
    if graph.n < 2:
        raise GraphError("spectral gap needs at least two vertices")
    lap = normalized_laplacian(graph)
    eigenvalues = _smallest_two(lap, vectors=False)
    return float(max(0.0, eigenvalues[1]))


def fiedler_vector(graph: Graph, order: Optional[List] = None) -> np.ndarray:
    """Eigenvector of the normalized Laplacian for lambda_2."""
    if order is None:
        order = graph.vertices()
    lap = normalized_laplacian(graph, order)
    _, vectors = _smallest_two(lap, vectors=True)
    return vectors[:, 1]


def lambda2_and_fiedler(graph: Graph) -> Tuple[float, np.ndarray]:
    """``(lambda_2, Fiedler vector)`` from a single partial eigensolve.

    The expander decomposition needs both the Cheeger certificate
    (``lambda_2 / 2``) and — when the certificate fails — the Fiedler
    vector to sweep along.  Both come from the same normalized
    Laplacian, so solving once halves the dominant eigensolver cost of
    the decomposition.  The vector is in ``graph.vertices()`` order,
    matching what :func:`sweep_cut` expects via its ``vector`` argument.
    """
    if graph.n < 2:
        raise GraphError("spectral gap needs at least two vertices")
    lap = normalized_laplacian(graph)
    values, vectors = _smallest_two(lap, vectors=True)
    return float(max(0.0, values[1])), vectors[:, 1]


def cheeger_bounds(graph: Graph) -> Tuple[float, float]:
    """(lambda_2 / 2, sqrt(2 * lambda_2)): Cheeger's sandwich on Phi(G)."""
    gap = spectral_gap(graph)
    return gap / 2.0, float(np.sqrt(2.0 * gap))


def conductance_lower_bound(graph: Graph) -> float:
    """Certified lower bound on Phi(G): lambda_2 / 2.

    This is the certificate attached to every cluster the expander
    decomposition emits.
    """
    if graph.n < 2:
        # A single vertex is vacuously a perfect expander.
        return 1.0
    return cheeger_bounds(graph)[0]


def sweep_cut(
    graph: Graph,
    vector: Optional[np.ndarray] = None,
    balanced: bool = False,
    rng=None,
    slack: float = 1.0,
) -> Tuple[float, Set]:
    """Best prefix cut of a vertex ordering by the (scaled) Fiedler vector.

    Sorts vertices by ``D^{-1/2} v`` (the degree-normalized Fiedler
    embedding) and evaluates the conductance of every prefix, returning
    the minimum.  Cheeger's proof guarantees the result is at most
    ``sqrt(2 * lambda_2)``, i.e. within a quadratic factor of optimal.

    With ``balanced=True``, only prefixes whose sides both contain at
    least |V|/3 vertices are considered — the variant used to build
    edge separators (Theorem 1.6).

    With ``rng`` set and ``slack > 1``, return a uniformly random
    prefix among those with conductance at most ``slack`` times the
    best — the randomization hook iterated algorithms (distributed MWM)
    use to vary cluster boundaries between rounds while keeping the
    conductance guarantee within the slack factor.
    """
    if graph.n < 2:
        raise GraphError("sweep cut needs at least two vertices")
    order = graph.vertices()
    if vector is None:
        vector = fiedler_vector(graph, order)
    degrees = np.array([max(1, graph.degree(v)) for v in order], dtype=float)
    embedding = vector / np.sqrt(degrees)
    ranked = [order[i] for i in np.argsort(embedding)]

    total_volume = 2 * graph.m
    prefix: Set = set()
    cut_edges = 0
    vol = 0
    candidates: List[Tuple[float, int]] = []  # (phi, prefix length)
    for i, v in enumerate(ranked[:-1]):
        # Incremental cut-size update: edges into the prefix flip from
        # cut to internal; edges out of the prefix become cut.
        for u in graph.neighbors(v):
            if u in prefix:
                cut_edges -= 1
            else:
                cut_edges += 1
        prefix.add(v)
        vol += graph.degree(v)
        size = i + 1
        if balanced and not (
            size * 3 >= graph.n and (graph.n - size) * 3 >= graph.n
        ):
            continue
        denom = min(vol, total_volume - vol)
        phi = cut_edges / denom if denom > 0 else 0.0
        candidates.append((phi, size))

    if not candidates:
        # No balanced prefix existed (tiny graphs): fall back to the
        # most balanced split available.
        half = max(1, graph.n // 2)
        cut = set(ranked[:half])
        return graph.conductance_of_cut(cut), cut

    best = min(phi for phi, _size in candidates)
    if rng is not None and slack > 1.0:
        eligible = [
            size for phi, size in candidates if phi <= slack * best + 1e-12
        ]
        chosen = rng.choice(eligible)
    else:
        chosen = min(
            (size for phi, size in candidates if phi <= best + 1e-12)
        )
    cut = set(ranked[:chosen])
    return graph.conductance_of_cut(cut), cut
