"""Balanced edge separators (Theorem 1.6).

Theorem 1.6 proves every H-minor-free graph has a cut {S, V \\ S} with
min(|S|, |V \\ S|) >= n/3 crossing only O(sqrt(Delta * n)) edges.  The
theorem is existential; this module *constructs* balanced separators
and the benchmark suite measures their size against the sqrt(Delta n)
envelope.  Three constructions are tried and the best valid one wins:

1. BFS layering — pick a root, cut between consecutive BFS layers at a
   balanced, thin place (the classic planar-separator recipe).
2. Balanced spectral sweep — the Fiedler sweep restricted to balanced
   prefixes.
3. Local improvement — greedy vertex swaps that shrink the cut while
   preserving balance.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple

from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng


def _is_balanced(n: int, size: int) -> bool:
    """min(|S|, |V\\S|) >= n/3 with exact rational arithmetic."""
    return 3 * size >= n and 3 * (n - size) >= n


def _bfs_layer_candidate(graph: Graph, root) -> Optional[Set]:
    """Balanced cut along a BFS layer boundary from ``root``."""
    layers = graph.bfs_layers(root)
    if sum(len(layer) for layer in layers) != graph.n:
        return None  # disconnected: caller handles components
    best: Optional[Set] = None
    best_size = math.inf
    prefix: Set = set()
    for layer in layers[:-1]:
        prefix |= set(layer)
        if not _is_balanced(graph.n, len(prefix)):
            continue
        cut = graph.cut_size(prefix)
        if cut < best_size:
            best_size = cut
            best = set(prefix)
    return best


def _local_improve(
    graph: Graph, cut_set: Set, passes: int = 3
) -> Set:
    """Greedy boundary-vertex swaps that reduce the cut, keeping balance."""
    s = set(cut_set)
    n = graph.n
    for _ in range(passes):
        improved = False
        boundary = {u for u in s for v in graph.neighbors(u) if v not in s}
        boundary |= {
            v for u in s for v in graph.neighbors(u) if v not in s
        }
        for v in list(boundary):
            inside = v in s
            new_size = len(s) - 1 if inside else len(s) + 1
            if not _is_balanced(n, new_size):
                continue
            # Gain = (cut edges removed) - (cut edges created) by moving v.
            same = sum(1 for u in graph.neighbors(v) if (u in s) == inside)
            other = graph.degree(v) - same
            if other > same:
                if inside:
                    s.discard(v)
                else:
                    s.add(v)
                improved = True
        if not improved:
            break
    return s


def balanced_edge_separator(
    graph: Graph, seed: SeedLike = None
) -> Tuple[Set, int]:
    """Construct a balanced edge separator; returns (S, |boundary(S)|).

    Requires a connected graph with at least 2 vertices (the paper's
    setting: separators are applied to clusters G_i, which are
    connected by construction).
    """
    if graph.n < 2:
        raise GraphError("a separator needs at least two vertices")
    if not graph.is_connected():
        raise GraphError("balanced_edge_separator expects a connected graph")

    rng = ensure_rng(seed)
    candidates: List[Set] = []

    # 1. BFS layering from a few roots (peripheral roots give the
    #    thinnest layers).
    vertices = graph.vertices()
    roots = {vertices[0]}
    far = max(
        graph.bfs_distances(vertices[0]).items(), key=lambda kv: kv[1]
    )[0]
    roots.add(far)
    roots.update(rng.sample(vertices, min(3, len(vertices))))
    for root in roots:
        cand = _bfs_layer_candidate(graph, root)
        if cand is not None:
            candidates.append(cand)

    # 2. Balanced spectral sweep.
    from .conductance import sweep_cut

    try:
        _, sweep = sweep_cut(graph, balanced=True)
        if _is_balanced(graph.n, len(sweep)):
            candidates.append(sweep)
    except GraphError:
        pass

    # 3. A balanced BFS-prefix fallback (always exists on connected
    #    graphs): take vertices in BFS order until |S| = ceil(n/3).
    order: List = []
    for layer in graph.bfs_layers(vertices[0]):
        order.extend(layer)
    candidates.append(set(order[: (graph.n + 2) // 3]))

    best: Optional[Set] = None
    best_size = math.inf
    for cand in candidates:
        improved = _local_improve(graph, cand)
        for option in (cand, improved):
            if not _is_balanced(graph.n, len(option)):
                continue
            size = graph.cut_size(option)
            if size < best_size:
                best_size = size
                best = set(option)
    assert best is not None  # fallback candidate is always balanced
    return best, int(best_size)


def separator_quality(graph: Graph, cut_set: Set) -> float:
    """|boundary(S)| / sqrt(Delta * n) — Theorem 1.6's envelope ratio.

    For H-minor-free inputs this should stay bounded by a constant that
    depends only on H; the benchmark suite plots it across n.
    """
    denom = math.sqrt(max(1, graph.max_degree()) * max(1, graph.n))
    return graph.cut_size(cut_set) / denom
