"""Crash-consistency torture harness: ``repro chaos``.

The determinism contract says a resumed or cache-hit run is
bit-identical to a clean one.  This module attacks that contract with
the host-storage faults :mod:`repro.storage` can inject — kill-points,
torn writes, dropped fsyncs, bit-flips on read, transient ENOSPC, slow
I/O — around real ``repro bench`` subprocess runs, and checks the one
invariant that matters:

    *Every injected fault is either recovered bit-identically
    (resume / recompute) or fails loudly with a typed, counted error —
    never silently wrong.*

Each trial picks a fault class (cycling through
:data:`TRIAL_KINDS`), compiles a :class:`~repro.storage.DiskFaultPlan`
whose every decision is a pure function of the sweep seed and trial
index, and runs three phases:

1. **baseline** (once per sweep) — a clean journaled run whose table
   is the ground truth;
2. **faulted** — the same run with the plan injected through the
   ``REPRO_DISK_FAULTS`` environment mirror (so the subprocess and any
   workers inherit it);
3. **recovery** — only if the faulted phase died: ``--resume`` from
   its journal, or a fresh run when the journal itself was refused
   (exit 2, the loud path).

The trial's final table must match the baseline byte-for-byte (modulo
the explicitly-loud ``N corrupt journal line(s) skipped`` footer
suffix, which *is* the counting the invariant demands).  Anything else
is a silent divergence — the failure mode this harness exists to keep
extinct.  ``cache`` trials exercise the other durable surface: a
populated artifact cache re-read under bit-flips must detect every
corrupt entry (checksummed framing) and recompute to the identical
table.

The report (``--stats-json``) counts injected faults (read from each
subprocess's ``REPRO_DISK_FAULTS_STATS`` dump), recoveries, loud
failures, kills, and silent divergences.  CI runs a seeded smoke; the
50+-trial acceptance sweep is the same harness with ``--trials 50``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Dict, List, Optional, Tuple

from . import storage
from .errors import ReproError
from .storage import KILL_EXIT_CODE, DiskFaultPlan

__all__ = [
    "TRIAL_KINDS",
    "TrialResult",
    "ChaosReport",
    "plan_for_trial",
    "run_torture",
]

#: Fault classes, cycled by trial index.  ``mixed`` layers several
#: fault kinds; ``cache`` targets the artifact cache read path instead
#: of the journal write path.
TRIAL_KINDS = (
    "kill",
    "torn",
    "fsync",
    "bitflip",
    "enospc",
    "slow",
    "mixed",
    "cache",
)

#: Footer suffix that reports (rather than hides) journal corruption;
#: stripped before byte comparison because it is the loud accounting
#: the invariant requires, not a divergence.
_CORRUPT_FOOTER_RE = re.compile(
    r", \d+ corrupt journal line\(s\) skipped"
)

_PHASE_TIMEOUT_SECONDS = 600.0


def _derive(seed: int, trial: int, what: str, mod: int) -> int:
    """Deterministic small integer from the sweep coordinates."""
    token = f"{seed}|{trial}|{what}"
    digest = blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % mod


def plan_for_trial(seed: int, index: int) -> Tuple[str, DiskFaultPlan]:
    """The (kind, plan) for one trial — pure function of (seed, index)."""
    kind = TRIAL_KINDS[index % len(TRIAL_KINDS)]
    trial_seed = seed * 100_003 + index
    if kind == "kill":
        # Small op budget per bench run (journal header + one record
        # per cell + the --out table), so kill early.
        plan = DiskFaultPlan(
            seed=trial_seed, kill_at=1 + _derive(seed, index, "kill", 5)
        )
    elif kind == "torn":
        plan = DiskFaultPlan(seed=trial_seed, torn_write=0.45)
    elif kind == "fsync":
        plan = DiskFaultPlan(seed=trial_seed, drop_fsync=0.45)
    elif kind == "bitflip":
        plan = DiskFaultPlan(seed=trial_seed, bit_flip=0.6)
    elif kind == "enospc":
        plan = DiskFaultPlan(seed=trial_seed, enospc=0.3)
    elif kind == "slow":
        plan = DiskFaultPlan(seed=trial_seed, slow=0.5, slow_seconds=0.002)
    elif kind == "mixed":
        plan = DiskFaultPlan(
            seed=trial_seed,
            torn_write=0.2,
            drop_fsync=0.2,
            bit_flip=0.25,
            enospc=0.1,
        )
    else:  # cache
        plan = DiskFaultPlan(seed=trial_seed, bit_flip=0.6)
    return kind, plan


@dataclass
class TrialResult:
    """Outcome of one torture trial."""

    index: int
    kind: str
    plan: Dict[str, Any]
    #: (phase name, exit code) in execution order.
    phases: List[Tuple[str, int]] = field(default_factory=list)
    #: Faults the subprocesses actually injected (from the stats dump).
    injected: int = 0
    #: recovered | clean | silent-divergence | harness-error
    outcome: str = "harness-error"
    #: True when some phase failed loudly (nonzero exit) on the way.
    loud: bool = False
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "plan": self.plan,
            "phases": [list(p) for p in self.phases],
            "injected": self.injected,
            "outcome": self.outcome,
            "loud": self.loud,
            "detail": self.detail,
        }


@dataclass
class ChaosReport:
    """Aggregated sweep outcome; ``ok`` is the acceptance invariant."""

    suite: str
    limit: int
    seed: int
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(t.injected for t in self.trials)

    @property
    def recovered(self) -> int:
        return sum(1 for t in self.trials if t.outcome == "recovered")

    @property
    def clean(self) -> int:
        return sum(1 for t in self.trials if t.outcome == "clean")

    @property
    def loud_failures(self) -> int:
        return sum(1 for t in self.trials if t.loud)

    @property
    def kills(self) -> int:
        return sum(
            1
            for t in self.trials
            for _phase, code in t.phases
            if code == KILL_EXIT_CODE
        )

    @property
    def silent_divergences(self) -> int:
        return sum(
            1 for t in self.trials if t.outcome == "silent-divergence"
        )

    @property
    def harness_errors(self) -> int:
        return sum(1 for t in self.trials if t.outcome == "harness-error")

    @property
    def ok(self) -> bool:
        return self.silent_divergences == 0 and self.harness_errors == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "limit": self.limit,
            "seed": self.seed,
            "trials": [t.to_dict() for t in self.trials],
            "counts": {
                "trials": len(self.trials),
                "injected": self.injected,
                "recovered": self.recovered,
                "clean": self.clean,
                "loud_failures": self.loud_failures,
                "kills": self.kills,
                "silent_divergences": self.silent_divergences,
                "harness_errors": self.harness_errors,
            },
            "ok": self.ok,
        }

    def save(self, path: str) -> None:
        storage.atomic_write_text(
            path,
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            verify=True,
        )

    def summary(self) -> str:
        return (
            f"chaos {self.suite}(limit={self.limit}) seed={self.seed}: "
            f"{len(self.trials)} trial(s), {self.injected} fault(s) "
            f"injected, {self.recovered} recovered, {self.clean} clean, "
            f"{self.loud_failures} loud, {self.kills} kill(s), "
            f"{self.silent_divergences} SILENT divergence(s)"
        )


class _Bench:
    """Runs ``repro bench`` subprocesses for one sweep."""

    def __init__(self, suite: str, limit: int, workdir: str) -> None:
        self.suite = suite
        self.limit = limit
        self.workdir = workdir
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_root
        )
        # A sweep must not inherit an outer fault plan or chaos-suite
        # misbehavior knobs from the caller's environment.
        for key in (storage.ENV_PLAN, storage.ENV_STATS, "REPRO_CHAOS_DIR"):
            env.pop(key, None)
        self._env = env

    def run(
        self,
        out_dir: str,
        journal: str,
        plan: Optional[DiskFaultPlan] = None,
        stats_path: Optional[str] = None,
        cache_dir: Optional[str] = None,
        resume: bool = False,
    ) -> subprocess.CompletedProcess:
        cmd = [
            sys.executable, "-m", "repro.cli", "bench",
            "--suite", self.suite,
            "--limit", str(self.limit),
            "--jobs", "1",
            "--journal", journal,
            "--out", out_dir,
        ]
        if cache_dir:
            cmd += ["--cache-dir", cache_dir]
        else:
            cmd.append("--no-cache")
        if resume:
            cmd.append("--resume")
        env = dict(self._env)
        if plan is not None:
            env[storage.ENV_PLAN] = plan.to_json()
            if stats_path:
                env[storage.ENV_STATS] = stats_path
        os.makedirs(out_dir, exist_ok=True)
        return subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            env=env,
            timeout=_PHASE_TIMEOUT_SECONDS,
        )

    def table_path(self, out_dir: str) -> str:
        return os.path.join(out_dir, f"{self.suite}.txt")


def _normalize_table(text: str) -> str:
    """Strip the loud corrupt-journal footer suffix before comparison."""
    return _CORRUPT_FOOTER_RE.sub("", text)


def _read_injected(stats_path: str) -> int:
    try:
        with open(stats_path) as handle:
            return int(json.load(handle).get("injected", 0))
    except (OSError, ValueError):
        return 0


def run_torture(
    suite: str = "E10",
    limit: int = 2,
    trials: int = 8,
    seed: int = 0,
    workdir: Optional[str] = None,
    progress=None,
) -> ChaosReport:
    """Run the kill-point / disk-fault schedule sweep.

    ``progress`` is an optional callable receiving one human-readable
    line per completed trial (the CLI passes ``print``).  The caller
    owns ``workdir`` when given; otherwise a temporary directory is
    created and removed with the sweep.
    """
    own_workdir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    report = ChaosReport(suite=suite, limit=limit, seed=seed)
    bench = _Bench(suite, limit, workdir)
    try:
        baseline_dir = os.path.join(workdir, "baseline")
        base = bench.run(
            baseline_dir, os.path.join(workdir, "baseline.jsonl")
        )
        if base.returncode != 0:
            raise ReproError(
                f"chaos baseline run failed with exit {base.returncode}: "
                f"{base.stderr.strip().splitlines()[-1:] or 'no stderr'}"
            )
        with open(bench.table_path(baseline_dir)) as handle:
            baseline_table = handle.read()

        for index in range(trials):
            result = _run_trial(bench, workdir, seed, index, baseline_table)
            report.trials.append(result)
            if progress is not None:
                progress(
                    f"trial {index:3d} [{result.kind:7s}] "
                    f"{result.outcome}"
                    + (" (loud)" if result.loud else "")
                    + (f" — {result.detail}" if result.detail else "")
                )
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return report


def _run_trial(
    bench: _Bench,
    workdir: str,
    seed: int,
    index: int,
    baseline_table: str,
) -> TrialResult:
    kind, plan = plan_for_trial(seed, index)
    trial_dir = os.path.join(workdir, f"trial-{index:04d}")
    os.makedirs(trial_dir, exist_ok=True)
    journal = os.path.join(trial_dir, "wal.jsonl")
    stats_path = os.path.join(trial_dir, "storage-stats.json")
    result = TrialResult(index=index, kind=kind, plan=plan.to_dict())
    try:
        if kind in ("cache", "bitflip"):
            # Read faults need a read-heavy path to bite: populate the
            # artifact cache cleanly, then re-read it under the plan.
            final_dir = _cache_trial(
                bench, trial_dir, journal, plan, stats_path, result
            )
        else:
            final_dir = _journal_trial(
                bench, trial_dir, journal, plan, stats_path, result
            )
        result.injected = _read_injected(stats_path)
        if final_dir is None:
            # Recovery itself failed loudly: a real invariant breach
            # (recompute-from-nothing must always work).
            result.outcome = "harness-error"
            return result
        with open(bench.table_path(final_dir)) as handle:
            final_table = handle.read()
        if _normalize_table(final_table) == _normalize_table(
            baseline_table
        ):
            result.outcome = (
                "recovered" if (result.injected or result.loud) else "clean"
            )
        else:
            result.outcome = "silent-divergence"
            result.detail = "final table differs from clean baseline"
        return result
    except (OSError, subprocess.TimeoutExpired) as exc:
        result.detail = f"{type(exc).__name__}: {exc}"
        result.outcome = "harness-error"
        return result


def _journal_trial(
    bench: _Bench,
    trial_dir: str,
    journal: str,
    plan: DiskFaultPlan,
    stats_path: str,
    result: TrialResult,
) -> Optional[str]:
    """Faulted journaled run, then resume/recompute.  Returns the out
    dir holding the final table, or None when recovery failed."""
    faulted_dir = os.path.join(trial_dir, "faulted")
    proc = bench.run(faulted_dir, journal, plan=plan, stats_path=stats_path)
    result.phases.append(("faulted", proc.returncode))
    if proc.returncode == 0:
        return faulted_dir
    result.loud = True
    recovery_dir = os.path.join(trial_dir, "recovery")
    proc = bench.run(recovery_dir, journal, resume=True)
    result.phases.append(("resume", proc.returncode))
    if proc.returncode == 0:
        return recovery_dir
    if proc.returncode == 2:
        # The journal was refused (corrupt header — the loud typed
        # path).  Recovery of last resort: recompute from nothing.
        try:
            os.unlink(journal)
        except OSError:
            pass
        proc = bench.run(recovery_dir, journal)
        result.phases.append(("fresh", proc.returncode))
        if proc.returncode == 0:
            return recovery_dir
    result.detail = (
        "recovery failed: " + (proc.stderr.strip().splitlines() or ["?"])[-1]
    )
    return None


def _cache_trial(
    bench: _Bench,
    trial_dir: str,
    journal: str,
    plan: DiskFaultPlan,
    stats_path: str,
    result: TrialResult,
) -> Optional[str]:
    """Populate the artifact cache cleanly, then re-read it under
    bit-flips: every corrupt entry must be detected and recomputed."""
    cache_dir = os.path.join(trial_dir, "cache")
    populate_dir = os.path.join(trial_dir, "populate")
    proc = bench.run(
        populate_dir,
        os.path.join(trial_dir, "populate.jsonl"),
        cache_dir=cache_dir,
    )
    result.phases.append(("populate", proc.returncode))
    if proc.returncode != 0:
        result.detail = "cache populate run failed"
        return None
    reread_dir = os.path.join(trial_dir, "reread")
    proc = bench.run(
        reread_dir,
        journal,
        plan=plan,
        stats_path=stats_path,
        cache_dir=cache_dir,
    )
    result.phases.append(("reread", proc.returncode))
    if proc.returncode == 0:
        return reread_dir
    # Bit-flips can also land on the journal replay path; recover the
    # same way a journal trial does.
    result.loud = True
    recovery_dir = os.path.join(trial_dir, "recovery")
    proc = bench.run(recovery_dir, journal, resume=True)
    result.phases.append(("resume", proc.returncode))
    if proc.returncode == 0:
        return recovery_dir
    result.detail = (
        "recovery failed: " + (proc.stderr.strip().splitlines() or ["?"])[-1]
    )
    return None
