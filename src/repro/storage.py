"""Crash-consistent storage primitives shared by every durability surface.

Every artifact the reproduction persists — cache entries, journal
records, simulation checkpoints, progress heartbeats, trace and
telemetry sinks — routes its bytes through this module.  Centralizing
the write path buys three guarantees that each consumer used to
hand-roll (or lack):

* **Atomicity.**  :func:`atomic_write_bytes` stages into a temporary
  file in the destination directory, fsyncs, and ``os.replace``\\ s into
  place, so readers observe either the old content or the new content,
  never a torn half-file.  :class:`DurableAppender` fsyncs every
  appended line, so a record accepted by the appender survives SIGKILL.
* **Checksums.**  :func:`frame_bytes` / :func:`unframe_bytes` wrap
  binary blobs in a blake2b-checksummed envelope, and
  :func:`seal_record` / :func:`check_record` embed a blake2b digest in
  JSONL records (the ``"cs"`` field, computed over the canonical JSON
  of the record without it).  Readers accept the legacy unframed /
  unsealed formats unchanged, so artifacts written before this layer
  existed keep loading.
* **Deterministic fault injection.**  :class:`DiskFaultPlan` mirrors
  the message-level :class:`repro.congest.faults.FaultPlan`: every
  injection decision is a pure keyed-blake2b function of the plan seed
  and the operation's coordinates (kind, file basename, per-file
  operation index), so a chaos trial replays bit-identically from its
  seed.  Plans inject torn writes, dropped fsyncs (modeled as the
  record never reaching the disk), bit-flips on read, transient
  ENOSPC, slow I/O, and a global kill-point that terminates the
  process mid-operation — the harness behind ``repro chaos``
  (:mod:`repro.chaos`, docs/durability.md).

Transient ``OSError``\\ s (injected or real ENOSPC/EAGAIN/EINTR) are
retried with bounded exponential backoff before surfacing as
:class:`repro.errors.StorageError`.
"""

from __future__ import annotations

import atexit
import errno
import io
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field, fields
from hashlib import blake2b
from typing import Any, Dict, IO, Iterator, Optional, Tuple

from .errors import ChecksumError, FaultError, StorageError

__all__ = [
    "FRAME_MAGIC",
    "KILL_EXIT_CODE",
    "DiskFaultPlan",
    "DiskFaultInjector",
    "StorageStats",
    "storage_stats",
    "reset_storage_stats",
    "active_injector",
    "use_disk_faults",
    "frame_bytes",
    "unframe_bytes",
    "canonical_json",
    "seal_record",
    "check_record",
    "atomic_write_bytes",
    "atomic_write_text",
    "read_bytes",
    "read_text",
    "DurableAppender",
    "iter_sealed_lines",
]

# Frame layout: 4-byte magic, 16-byte blake2b digest of the payload,
# payload.  The magic can never collide with the formats that predate
# framing (pickle protocol >= 2 starts with b"\x80", JSON with
# whitespace/punctuation), which is what makes the legacy passthrough
# in unframe_bytes safe.
FRAME_MAGIC = b"RSF1"
_FRAME_DIGEST_SIZE = 16
_RECORD_DIGEST_SIZE = 8

# Exit code used by an injected kill-point; distinct from exit 2
# (clean CLI error) and from real signal deaths so the chaos harness
# can tell "the plan killed it" from "it crashed on its own".
KILL_EXIT_CODE = 121

# Transient errnos worth retrying: out-of-space and interrupted /
# temporarily-unavailable syscalls.  Everything else (EACCES, EROFS,
# ENOENT on the parent directory) is permanent and surfaces at once.
_TRANSIENT_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EDQUOT, errno.EAGAIN, errno.EINTR}
)
_MAX_RETRIES = 3
_BACKOFF_SECONDS = 0.01

# Environment mirrors, following REPRO_NO_KERNELS / REPRO_CHAOS_DIR:
# a compiled plan serialized as JSON, and an optional path where the
# injector dumps its stats on kill/exit so the parent harness can
# count injections performed inside subprocesses.
ENV_PLAN = "REPRO_DISK_FAULTS"
ENV_STATS = "REPRO_DISK_FAULTS_STATS"


# ---------------------------------------------------------------------------
# stats


@dataclass
class StorageStats:
    """Counters for storage operations and injected faults.

    One module-global instance accumulates across all surfaces; the
    chaos harness snapshots it (or reads the :data:`ENV_STATS` dump of
    a killed subprocess) to prove every injected fault was observed.
    """

    writes: int = 0
    appends: int = 0
    reads: int = 0
    retries: int = 0
    torn_writes: int = 0
    dropped_fsyncs: int = 0
    bit_flips: int = 0
    enospc: int = 0
    slow_ops: int = 0
    kills: int = 0

    def injected(self) -> int:
        """Total faults injected (excluding operation counters)."""
        return (
            self.torn_writes
            + self.dropped_fsyncs
            + self.bit_flips
            + self.enospc
            + self.slow_ops
            + self.kills
        )

    def to_dict(self) -> Dict[str, int]:
        data = asdict(self)
        data["injected"] = self.injected()
        return data


_STATS = StorageStats()


def storage_stats() -> StorageStats:
    """The process-wide storage/fault counters."""
    return _STATS


def reset_storage_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    for spec in fields(StorageStats):
        setattr(_STATS, spec.name, 0)


def _dump_stats(path: str) -> None:
    # Deliberately bypasses the fault-injected write path: the stats
    # dump is the harness's evidence channel and must not itself be
    # subject to the plan (or recurse into the kill-point).
    try:
        payload = json.dumps(_STATS.to_dict(), sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        pass


# ---------------------------------------------------------------------------
# fault plan


@dataclass(frozen=True)
class DiskFaultPlan:
    """Deterministic schedule of host-storage faults.

    Mirrors :class:`repro.congest.faults.FaultPlan`: rates are
    probabilities in ``[0, 1]`` and every decision is a pure keyed
    hash of ``(seed, operation kind, file basename, per-file operation
    index)`` — no RNG state, so two processes compiling the same plan
    inject the same faults at the same operations.

    ``kill_at`` terminates the process (``os._exit`` with
    :data:`KILL_EXIT_CODE`) when the global storage-operation counter
    reaches that value, emulating SIGKILL at a reproducible point in
    the I/O stream.
    """

    seed: int = 0
    torn_write: float = 0.0
    drop_fsync: float = 0.0
    bit_flip: float = 0.0
    enospc: float = 0.0
    slow: float = 0.0
    slow_seconds: float = 0.005
    kill_at: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("torn_write", "drop_fsync", "bit_flip", "enospc", "slow"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(
                    f"disk fault rate {name}={rate!r} outside [0, 1]"
                )
        if self.slow_seconds < 0:
            raise FaultError("slow_seconds must be non-negative")
        if self.kill_at is not None and self.kill_at < 1:
            raise FaultError("kill_at must be a positive operation index")

    def is_noop(self) -> bool:
        return (
            self.torn_write == 0.0
            and self.drop_fsync == 0.0
            and self.bit_flip == 0.0
            and self.enospc == 0.0
            and self.slow == 0.0
            and self.kill_at is None
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DiskFaultPlan":
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultError(
                f"unknown disk fault plan field(s): {sorted(unknown)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "DiskFaultPlan":
        try:
            data = json.loads(text)
        except (ValueError, TypeError) as exc:
            raise FaultError(f"unparseable disk fault plan: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultError("disk fault plan must be a JSON object")
        return cls.from_dict(data)

    def compile(self, stats_path: Optional[str] = None) -> "DiskFaultInjector":
        return DiskFaultInjector(self, stats_path=stats_path)


class DiskFaultInjector:
    """Compiled :class:`DiskFaultPlan`, consulted once per storage op.

    Stateless in the same sense as the message-fault injector: the
    per-coordinate decisions come from the keyed hash, and the only
    mutable state is the operation counters that *define* the
    coordinates (and advance identically in any replay).
    """

    def __init__(
        self, plan: DiskFaultPlan, stats_path: Optional[str] = None
    ) -> None:
        self.plan = plan
        self._key = blake2b(
            str(plan.seed).encode("utf-8"), digest_size=16
        ).digest()
        self._seq: Dict[Tuple[str, str], int] = {}
        self._ops = 0
        self._stats_path = stats_path

    # -- coordinates ---------------------------------------------------
    def _hash64(self, kind: str, name: str, seq: int) -> int:
        token = f"{kind}|{name}|{seq}"
        digest = blake2b(
            token.encode("utf-8"), digest_size=8, key=self._key
        ).digest()
        return int.from_bytes(digest, "big")

    def _decide(self, kind: str, name: str, rate: float) -> Tuple[bool, int]:
        """(fire?, hash64) for the next operation of this kind on this file."""
        seq = self._seq.get((kind, name), 0)
        self._seq[(kind, name)] = seq + 1
        if rate <= 0.0:
            return False, 0
        h = self._hash64(kind, name, seq)
        return (h / 2.0 ** 64) < rate, h

    def tick(self) -> None:
        """Advance the global op counter; fire the kill-point if reached."""
        self._ops += 1
        if self.plan.kill_at is not None and self._ops >= self.plan.kill_at:
            _STATS.kills += 1
            if self._stats_path:
                _dump_stats(self._stats_path)
            os._exit(KILL_EXIT_CODE)

    # -- per-operation fault hooks -------------------------------------
    def maybe_slow(self, name: str) -> None:
        fire, _ = self._decide("slow", name, self.plan.slow)
        if fire:
            _STATS.slow_ops += 1
            time.sleep(self.plan.slow_seconds)

    def maybe_enospc(self, name: str) -> None:
        fire, _ = self._decide("enospc", name, self.plan.enospc)
        if fire:
            _STATS.enospc += 1
            raise OSError(errno.ENOSPC, "injected: no space left on device")

    def torn_length(self, name: str, size: int) -> Optional[int]:
        """Length of the prefix to write if this write tears, else None."""
        fire, h = self._decide("torn", name, self.plan.torn_write)
        if not fire or size <= 1:
            return None
        _STATS.torn_writes += 1
        return h % size  # 0 .. size-1 bytes actually reach the disk

    def drops_fsync(self, name: str) -> bool:
        fire, _ = self._decide("fsync", name, self.plan.drop_fsync)
        if fire:
            _STATS.dropped_fsyncs += 1
        return fire

    def flip_bit(self, name: str, data: bytes) -> bytes:
        fire, h = self._decide("bitflip", name, self.plan.bit_flip)
        if not fire or not data:
            return data
        _STATS.bit_flips += 1
        bit = h % (len(data) * 8)
        mutated = bytearray(data)
        mutated[bit // 8] ^= 1 << (bit % 8)
        return bytes(mutated)

    def dump_stats(self) -> None:
        if self._stats_path:
            _dump_stats(self._stats_path)


# ---------------------------------------------------------------------------
# active injector (explicit context or environment mirror)

_ACTIVE: Optional[DiskFaultInjector] = None
_ENV_INJECTOR: Optional[DiskFaultInjector] = None
_ENV_SNAPSHOT: Optional[str] = None


class use_disk_faults:
    """Context manager installing a process-wide disk-fault injector.

    ``with use_disk_faults(plan):`` makes every storage primitive in
    this module consult the compiled plan.  Nesting replaces the outer
    injector for the inner block.  Subprocesses inherit faults through
    the :data:`ENV_PLAN` environment variable instead.
    """

    def __init__(self, plan: Optional[DiskFaultPlan]) -> None:
        self._injector = (
            None if plan is None or plan.is_noop() else plan.compile()
        )
        self._previous: Optional[DiskFaultInjector] = None

    def __enter__(self) -> Optional[DiskFaultInjector]:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._injector
        return self._injector

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def active_injector() -> Optional[DiskFaultInjector]:
    """The injector in effect, if any: explicit context beats environment."""
    global _ENV_INJECTOR, _ENV_SNAPSHOT
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(ENV_PLAN)
    if not raw:
        _ENV_INJECTOR = None
        _ENV_SNAPSHOT = None
        return None
    if raw != _ENV_SNAPSHOT:
        plan = DiskFaultPlan.from_json(raw)
        stats_path = os.environ.get(ENV_STATS) or None
        _ENV_INJECTOR = (
            None if plan.is_noop() else plan.compile(stats_path=stats_path)
        )
        _ENV_SNAPSHOT = raw
        if _ENV_INJECTOR is not None and stats_path:
            # The kill-point dumps explicitly (atexit never runs under
            # os._exit); this covers clean exits and loud crashes so
            # the chaos harness can always count injected faults.
            atexit.register(_dump_stats, stats_path)
    return _ENV_INJECTOR


# ---------------------------------------------------------------------------
# checksummed framing (binary blobs)


def frame_bytes(payload: bytes) -> bytes:
    """Wrap ``payload`` in the checksummed storage frame."""
    digest = blake2b(payload, digest_size=_FRAME_DIGEST_SIZE).digest()
    return FRAME_MAGIC + digest + payload


def unframe_bytes(blob: bytes) -> bytes:
    """Verify and strip a storage frame; pass legacy unframed bytes through.

    Raises :class:`ChecksumError` when the frame's digest does not
    match its payload (torn write or bit-flip).  Bytes that do not
    start with the frame magic predate framing and are returned
    unchanged — their integrity is the consumer's legacy contract.
    """
    if not blob.startswith(FRAME_MAGIC):
        return blob
    header_len = len(FRAME_MAGIC) + _FRAME_DIGEST_SIZE
    if len(blob) < header_len:
        raise ChecksumError(
            f"framed blob truncated inside the header "
            f"({len(blob)} < {header_len} bytes)"
        )
    expected = blob[len(FRAME_MAGIC):header_len]
    payload = blob[header_len:]
    actual = blake2b(payload, digest_size=_FRAME_DIGEST_SIZE).digest()
    if actual != expected:
        raise ChecksumError(
            "framed blob failed checksum verification "
            f"(expected {expected.hex()}, got {actual.hex()})"
        )
    return payload


# ---------------------------------------------------------------------------
# sealed JSONL records


def canonical_json(record: Dict[str, Any]) -> str:
    """The canonical serialization checksums are computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _record_digest(record: Dict[str, Any]) -> str:
    data = canonical_json(record).encode("utf-8")
    return blake2b(data, digest_size=_RECORD_DIGEST_SIZE).hexdigest()


def seal_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Return a copy of ``record`` with its ``"cs"`` checksum embedded."""
    body = {k: v for k, v in record.items() if k != "cs"}
    sealed = dict(body)
    sealed["cs"] = _record_digest(body)
    return sealed


def check_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Verify a sealed record; accept legacy records without ``"cs"``.

    Returns the record body (checksum field stripped).  Raises
    :class:`ChecksumError` on a digest mismatch.
    """
    if "cs" not in record:
        return record
    body = {k: v for k, v in record.items() if k != "cs"}
    expected = record["cs"]
    actual = _record_digest(body)
    if actual != expected:
        raise ChecksumError(
            "sealed record failed checksum verification "
            f"(expected {expected!r}, got {actual!r})"
        )
    return body


# ---------------------------------------------------------------------------
# retry plumbing


def _retry_transient(what: str, path: str, func: Any) -> Any:
    """Run ``func`` retrying transient OSErrors with bounded backoff."""
    attempt = 0
    while True:
        try:
            return func()
        except OSError as exc:
            transient = exc.errno in _TRANSIENT_ERRNOS
            attempt += 1
            if not transient or attempt > _MAX_RETRIES:
                raise StorageError(
                    f"cannot {what} {path!r}: {exc}"
                ) from exc
            _STATS.retries += 1
            time.sleep(_BACKOFF_SECONDS * (2 ** (attempt - 1)))


# ---------------------------------------------------------------------------
# primitives


def atomic_write_bytes(path: str, data: bytes, verify: bool = False) -> None:
    """Atomically replace ``path`` with ``data`` (write-temp, fsync, rename).

    Under an active fault plan the write may tear (a prefix reaches
    the destination), the fsync may be dropped (the replace never
    happens: readers keep seeing the previous content), or the
    operation may fail with transient ENOSPC — retried up to the
    bounded budget, then surfaced as :class:`StorageError`.

    ``verify`` reads the destination back after the rename and treats
    any byte difference as a transient failure (rewritten, then loud).
    Checksummed surfaces don't need it — their *readers* detect damage
    — but final artifacts with no checksum and no later reader (result
    tables, stats JSON, trace snapshots) would otherwise be the one
    place a lying disk could corrupt silently.
    """
    injector = active_injector()
    name = os.path.basename(path)

    def _attempt() -> None:
        payload = data
        drop_replace = False
        if injector is not None:
            injector.tick()
            injector.maybe_slow(name)
            injector.maybe_enospc(name)
            torn = injector.torn_length(name, len(payload))
            if torn is not None:
                payload = payload[:torn]
            drop_replace = injector.drops_fsync(name)
        directory = os.path.dirname(path) or "."
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            if drop_replace:
                # The fsync "completed" from the caller's view but the
                # data never became durable; model that as the rename
                # never landing.
                os.unlink(tmp_path)
            else:
                os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if verify:
            # Read raw (not through read_bytes): this checks what the
            # rename actually left on disk, without spending another
            # injection decision on our own verification.
            try:
                with open(path, "rb") as handle:
                    on_disk = handle.read()
            except FileNotFoundError:
                on_disk = None
            if on_disk != data:
                raise OSError(
                    errno.EAGAIN,
                    "read-back verification found torn or stale bytes",
                )

    _retry_transient("write", path, _attempt)
    _STATS.writes += 1


def atomic_write_text(
    path: str, text: str, encoding: str = "utf-8", verify: bool = False
) -> None:
    atomic_write_bytes(path, text.encode(encoding), verify=verify)


def read_bytes(path: str) -> bytes:
    """Read a file fully; an active plan may flip one bit of the result.

    ``FileNotFoundError`` and other ``OSError``\\ s propagate unchanged
    so callers keep their existing miss/degrade handling.
    """
    injector = active_injector()
    name = os.path.basename(path)
    if injector is not None:
        injector.tick()
        injector.maybe_slow(name)
    with open(path, "rb") as handle:
        data = handle.read()
    if injector is not None:
        data = injector.flip_bit(name, data)
    _STATS.reads += 1
    return data


def read_text(path: str, encoding: str = "utf-8") -> str:
    return read_bytes(path).decode(encoding, errors="replace")


class DurableAppender:
    """Append-only line writer with per-line durability.

    Every :meth:`append` writes one line, flushes, and fsyncs, so an
    accepted record survives SIGKILL at any later point.  Under an
    active fault plan a line may be torn (prefix only — detected on
    replay by the record checksum), silently never written (dropped
    fsync: the caller believes the record is durable but it is not,
    which resume recovers by recomputing), or fail with transient
    ENOSPC (retried, then raised as :class:`StorageError`).
    """

    def __init__(self, path: str, mode: str = "a") -> None:
        if mode not in ("a", "w"):
            raise ValueError(f"DurableAppender mode must be 'a' or 'w', got {mode!r}")
        self.path = path
        self._name = os.path.basename(path)
        self._handle: Optional[IO[str]] = open(path, mode, encoding="utf-8")

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append(self, line: str) -> None:
        """Durably append one line (newline added if missing)."""
        if self._handle is None:
            raise StorageError(f"appender for {self.path!r} is closed")
        if not line.endswith("\n"):
            line += "\n"
        injector = active_injector()

        def _attempt() -> None:
            payload = line
            if injector is not None:
                injector.tick()
                injector.maybe_slow(self._name)
                injector.maybe_enospc(self._name)
                if injector.drops_fsync(self._name):
                    # Modeled lost write: the page never reached disk.
                    return
                torn = injector.torn_length(self._name, len(payload))
                if torn is not None:
                    self._handle.write(payload[:torn])
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                    return
            self._handle.write(payload)
            self._handle.flush()
            os.fsync(self._handle.fileno())

        _retry_transient("append to", self.path, _attempt)
        _STATS.appends += 1

    def append_record(self, record: Dict[str, Any]) -> None:
        """Seal ``record`` with its checksum and durably append it."""
        self.append(json.dumps(seal_record(record), sort_keys=True))

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def iter_sealed_lines(
    path: str, stats: Optional[Dict[str, int]] = None
) -> Iterator[Dict[str, Any]]:
    """Yield verified records from a JSONL file, counting bad lines.

    Unparseable, truncated, or checksum-failing lines are skipped; if
    ``stats`` is given its ``"skipped"`` entry is incremented per bad
    line.  Legacy records without a checksum are yielded as-is.
    """
    data = read_text(path)
    for line in io.StringIO(data):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            yield check_record(record)
        except (ValueError, ChecksumError):
            if stats is not None:
                stats["skipped"] = stats.get("skipped", 0) + 1
