"""Batch experiment runner: cells, suites, and the parallel executor.

The experiment grid of the benchmark harness (family x n x seed x
epsilon/phi) decomposes into independent *cells*, each a pure function
of its parameters.  This package turns the E-suite sweeps into explicit
cell lists (:mod:`repro.runner.suites`), executes them serially or
across a spawn-safe ``ProcessPoolExecutor`` (:mod:`repro.runner
.executor`), and reassembles the per-cell results into the exact tables
the serial harness produces — byte-identical, by construction, because
every cell is deterministically seeded by the grid and merged in grid
order rather than completion order.
"""

from .cells import CellResult, ExperimentCell
from .executor import QuarantinedCell, RecoveryStats, SuiteRun, run_suite
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    SuiteJournal,
    default_journal_path,
    run_fingerprint,
)
from .progress import (
    PROGRESS_SCHEMA_VERSION,
    ProgressLog,
    follow_progress,
    iter_progress,
    render_progress_event,
)
from .suites import SUITES, execute_cell, suite_names

__all__ = [
    "CellResult",
    "ExperimentCell",
    "JOURNAL_SCHEMA_VERSION",
    "PROGRESS_SCHEMA_VERSION",
    "ProgressLog",
    "QuarantinedCell",
    "RecoveryStats",
    "SuiteJournal",
    "SuiteRun",
    "SUITES",
    "default_journal_path",
    "execute_cell",
    "follow_progress",
    "iter_progress",
    "render_progress_event",
    "run_fingerprint",
    "run_suite",
    "suite_names",
]
