"""Write-ahead suite journal: crash-safe resumable benchmark runs.

A long ``repro bench`` sweep that dies at cell 40 of 50 — SIGKILL, OOM,
a pulled plug — should not owe the world 40 recomputations.  The
journal makes suite execution *durable at cell granularity*: every
completed :class:`~repro.runner.cells.CellResult` is appended to an
append-only JSONL file (flushed and fsynced per record, so a kill can
lose at most the cell in flight), and ``run_suite(resume=True)`` replays
the journal before scheduling anything, recomputing only what is
missing.  The merged table of an interrupted-then-resumed run is
byte-identical to the uninterrupted one because cells are pure functions
of their grid coordinates — the journal merely changes *when* each cell
ran, never *what* it produced.

File layout (one JSON object per line):

* line 1 — ``{"kind": "header", "schema": 1, "fingerprint": {...}}``
  where the fingerprint pins everything that defines the run: suite
  name, ``limit``/``trace``/``telemetry`` flags, and
  :func:`repro.cache.simulation_salt` (a hash of the whole source
  tree).  A journal written by different code, or for a different run
  shape, silently *cannot* be resumed — its cells may embody different
  behavior — so a fingerprint mismatch discards the journal and starts
  fresh rather than merging stale results.
* following lines — ``{"kind": "cell", "index": i, "payload": ...}``
  with the pickled ``CellResult`` base64-encoded.  Every record
  (header included) carries a ``"cs"`` blake2b checksum sealed by
  :func:`repro.storage.seal_record`.

Corruption is expected, not exceptional: the final line of a killed
run is routinely truncated.  Records are sealed with a blake2b
checksum (the ``"cs"`` field, via :mod:`repro.storage`; pre-checksum
journals still replay), and replay skips any line that fails to parse
*or verify* — counting it in :attr:`SuiteJournal.corrupt_lines`, which
``repro bench`` surfaces in its footer and ``--stats-json``.  A
corrupt cell is simply recomputed.  The one loud exception is the
header: a journal whose *identity* is unreadable (unparseable or
checksum-failing first line) cannot prove which run it belongs to, so
an explicit ``--resume`` against it raises
:class:`repro.errors.JournalError` instead of guessing (exit code 2 at
the CLI).  A parseable header that merely mismatches the current run
fingerprint still starts fresh, as before.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from typing import Any, Dict, Optional

from .. import storage
from ..cache import PICKLE_PROTOCOL, default_cache_root, simulation_salt
from ..errors import JournalError
from ..obs import registry as _telemetry
from .cells import CellResult

#: Version stamped on every journal header.  History:
#:
#: * 1 — initial layout (fingerprinted header + base64-pickled cells).
JOURNAL_SCHEMA_VERSION = 1


def default_journal_path(suite: str, cache_root: Optional[str] = None) -> str:
    """Where ``repro bench --resume`` keeps the journal for ``suite``.

    Journals live under the artifact cache root (they are run state,
    not source), one file per suite so concurrent suites never contend.
    """
    root = cache_root or default_cache_root()
    return os.path.join(root, "journals", f"{suite}.jsonl")


def run_fingerprint(
    suite: str,
    limit: Optional[int],
    trace: bool,
    telemetry: bool,
    salt: Optional[str] = None,
    trace_detail: bool = False,
    timeline: bool = False,
) -> Dict[str, Any]:
    """Everything that must match for journaled cells to be reusable.

    ``limit`` shapes the grid; ``trace``/``telemetry``/``trace_detail``
    /``timeline`` change what a cell result carries (a detail-mode
    trace or a timeline-mode telemetry payload must never replay into
    a plain run, and vice versa); the salt hashes the source tree, so
    *any* code edit invalidates the journal the same way it
    invalidates the artifact cache.
    """
    return {
        "suite": suite,
        "limit": limit,
        "trace": bool(trace),
        "telemetry": bool(telemetry),
        "trace_detail": bool(trace_detail),
        "timeline": bool(timeline),
        "salt": simulation_salt() if salt is None else salt,
    }


class SuiteJournal:
    """Append-only write-ahead log of completed suite cells.

    Open one with :meth:`open`; it validates (or writes) the header,
    loads every replayable cell into :attr:`completed`, and leaves the
    file positioned for appending.  ``record()`` durably appends one
    result.  Use as a context manager to guarantee the handle closes.
    """

    def __init__(
        self,
        path: str,
        fingerprint: Dict[str, Any],
        completed: Dict[int, CellResult],
        corrupt_lines: int,
        fresh: bool,
        appender: storage.DurableAppender,
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        #: Cells replayed from the journal, keyed by grid index.
        self.completed = completed
        #: Unparseable or checksum-failing lines skipped during replay
        #: (torn writes, bit rot); each corresponds to one recomputed
        #: cell at most.
        self.corrupt_lines = corrupt_lines
        #: True when no prior journal matched and a new one was begun.
        self.fresh = fresh
        self._appender = appender

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        fingerprint: Dict[str, Any],
        resume: bool = True,
    ) -> "SuiteJournal":
        """Open (and possibly replay) the journal at ``path``.

        With ``resume`` true, an existing journal whose header matches
        ``fingerprint`` is replayed into :attr:`completed`; a missing
        or fingerprint-mismatched journal is replaced by a fresh one,
        while a journal whose header is unreadable (unparseable JSON or
        a failed checksum) raises :class:`JournalError` — resuming from
        a journal that cannot prove its identity risks silently
        replaying the wrong run.  With ``resume`` false any existing
        journal is discarded — the caller wants a clean write-ahead log
        for a new run.
        """
        completed: Dict[int, CellResult] = {}
        corrupt = 0
        reusable = False
        if resume and os.path.exists(path):
            completed, corrupt, reusable, header_bad = cls._replay(
                path, fingerprint
            )
            if header_bad:
                raise JournalError(
                    f"journal {path!r} has an unreadable or corrupt "
                    "header; delete it (or drop --resume) to start fresh"
                )

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if reusable:
            appender = storage.DurableAppender(path, "a")
        else:
            # Fresh start: truncate via a new file so a stale or
            # mismatched journal can never mix with the new run.
            appender = storage.DurableAppender(path, "w")
            appender.append_record({
                "kind": "header",
                "schema": JOURNAL_SCHEMA_VERSION,
                "fingerprint": fingerprint,
            })
            completed = {}
        if completed:
            _telemetry.count("runner.journal_replayed", len(completed))
        return cls(
            path=path,
            fingerprint=fingerprint,
            completed=completed,
            corrupt_lines=corrupt,
            fresh=not reusable,
            appender=appender,
        )

    @staticmethod
    def _replay(path: str, fingerprint: Dict[str, Any]):
        """Parse an existing journal; bad cells skip, a bad header flags.

        Returns ``(completed, corrupt, reusable, header_bad)``.
        ``header_bad`` is only true when the first line exists but
        cannot be authenticated (parse or checksum failure) — the one
        corruption replay cannot recover from on its own.
        """
        completed: Dict[int, CellResult] = {}
        corrupt = 0
        header_ok = False
        try:
            lines = storage.read_text(path).splitlines()
        except OSError:
            return completed, corrupt, False, False
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            if lineno == 0:
                try:
                    record = storage.check_record(json.loads(line))
                    if record["kind"] != "header":
                        raise ValueError("first record is not a header")
                except Exception:
                    return {}, corrupt, False, True
                if (
                    record.get("schema") != JOURNAL_SCHEMA_VERSION
                    or record.get("fingerprint") != fingerprint
                ):
                    # Different run shape or code version: nothing
                    # in this journal is safe to merge.
                    return {}, corrupt, False, False
                header_ok = True
                continue
            try:
                record = storage.check_record(json.loads(line))
                if record["kind"] != "cell":
                    corrupt += 1
                    continue
                index = int(record["index"])
                blob = base64.b64decode(record["payload"])
                result = pickle.loads(blob)
                if not isinstance(result, CellResult):
                    corrupt += 1
                    continue
                result.replayed = True
                # Last write wins: a record duplicated by an
                # interrupted resume supersedes its earlier copy.
                completed[index] = result
            except Exception:
                corrupt += 1
        if not header_ok:
            return {}, corrupt, False, False
        return completed, corrupt, True, False

    def record(self, result: CellResult) -> None:
        """Durably append one completed cell (sealed, flushed, fsynced)."""
        blob = pickle.dumps(result, protocol=PICKLE_PROTOCOL)
        self._appender.append_record({
            "kind": "cell",
            "index": result.index,
            "payload": base64.b64encode(blob).decode("ascii"),
        })
        _telemetry.count("runner.journal_recorded")

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "SuiteJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
