"""Live runner heartbeat: flushed JSONL progress events.

A multi-minute ``repro bench`` sweep is a black box from the outside:
the table prints only at the end, and the only mid-run signal is CPU
load.  ``--progress out.jsonl`` turns the run into an observable
stream — the executor appends one JSON object per lifecycle event
(cell started / finished / retried / stalled / quarantined, pool
rebuilds, suite boundaries) and flushes after every line, so a second
terminal can follow along live with ``repro trace tail out.jsonl
--follow``.

The stream is *heartbeat*, not ledger: it exists to answer "is the run
alive, and what is it chewing on?"  Lines are nonetheless durable —
each event is sealed with a blake2b checksum and fsynced through
:class:`repro.storage.DurableAppender`, so the heartbeat survives
SIGKILL with at most the event in flight lost — and the reader skips
(and counts) unparseable or checksum-failing lines, because the final
line of a live file is routinely half-written.  If the disk gives out
mid-run the heartbeat degrades loudly (one warning) rather than
killing the sweep: durability of *results* is the journal's job
(:mod:`repro.runner.journal`).

Event vocabulary (each object carries ``t`` — epoch seconds — and
``event``; everything else is event-specific):

* ``bench_started`` / ``bench_finished`` — one ``repro bench``
  invocation, bracketing all its suites (``suites``, ``jobs``).
* ``suite_started`` — ``suite``, ``cells``, ``pending``, ``replayed``
  (journal resume satisfied that many), ``jobs``.
* ``cell_started`` — ``suite``, ``index``, ``label``, ``attempt``.
* ``cell_finished`` — adds ``elapsed`` seconds and ``stalled`` (the
  graded verdict said the algorithm stalled — the run itself is fine).
* ``cell_retried`` — a failed attempt going back in the queue:
  ``reason``, ``backoff`` seconds.
* ``cell_stalled`` — an attempt exceeded ``--cell-timeout`` and its
  worker is being killed (followed by ``cell_retried`` or
  ``cell_quarantined``).
* ``cell_quarantined`` — attempts exhausted: ``attempts``, ``reason``.
* ``pool_rebuilt`` — the process pool was torn down and rebuilt.

Schema changes bump :data:`PROGRESS_SCHEMA_VERSION`, stamped on the
``bench_started``/``suite_started`` events.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from typing import Any, Dict, Iterator, Optional, Union

from .. import storage
from ..errors import StorageError

PROGRESS_SCHEMA_VERSION = 1

#: How long ``follow_progress`` sleeps between polls of a quiet file.
_FOLLOW_POLL_SECONDS = 0.2


class ProgressLog:
    """Append-only flushed JSONL sink for runner lifecycle events.

    One instance spans one ``repro bench`` invocation (possibly several
    suites), so a single file tells the whole story in order.  Safe to
    construct on a fresh or existing path; events append.  The writer
    is the coordinating process only — worker processes never touch the
    file, so no cross-process locking is needed.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._appender: Optional[storage.DurableAppender] = (
            storage.DurableAppender(self.path, "a")
        )

    def emit(self, event: str, **fields: Any) -> None:
        """Durably append one sealed event line (flush + fsync)."""
        if self._appender is None:
            return
        record: Dict[str, Any] = {"t": round(time.time(), 3), "event": event}
        record.update(fields)
        try:
            self._appender.append_record(record)
        except StorageError as exc:
            # The heartbeat must never kill the run it is narrating:
            # warn once and go dark.
            warnings.warn(
                f"progress log {self.path!r} failed, disabling: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            self.close()

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def __enter__(self) -> "ProgressLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_progress(
    path: str, stats: Optional[Dict[str, int]] = None
) -> Iterator[Dict[str, Any]]:
    """Parse an existing progress file, skipping (and counting) bad lines.

    A live file's last line may be mid-write; a reader that crashed on
    it would be useless as a tail, so unparseable or checksum-failing
    lines are dropped — and tallied in ``stats["skipped"]`` when the
    caller passes a dict, so ``repro trace tail`` can report how many
    records it could not trust.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("progress record is not an object")
                record = storage.check_record(record)
            except (ValueError, StorageError):
                if stats is not None:
                    stats["skipped"] = stats.get("skipped", 0) + 1
                continue
            yield record


def follow_progress(
    path: str,
    poll_seconds: float = _FOLLOW_POLL_SECONDS,
    idle_timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield events as they are appended (``tail -f`` semantics).

    Returns after a ``bench_finished`` event, or once ``idle_timeout``
    seconds pass with no new complete line (None = follow until the
    caller stops iterating, e.g. on Ctrl-C).  Partial trailing lines
    are buffered until their newline arrives.
    """
    last_data = time.monotonic()
    buffer = ""
    with open(path) as handle:
        while True:
            chunk = handle.read()
            if chunk:
                last_data = time.monotonic()
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        if not isinstance(record, dict):
                            raise ValueError("not an object")
                        record = storage.check_record(record)
                    except (ValueError, StorageError):
                        continue
                    yield record
                    if record.get("event") == "bench_finished":
                        return
            else:
                if (
                    idle_timeout is not None
                    and time.monotonic() - last_data >= idle_timeout
                ):
                    return
                time.sleep(poll_seconds)


def render_progress_event(
    record: Dict[str, Any], t0: Optional[float] = None
) -> str:
    """One human-readable line per event for ``repro trace tail``.

    ``t0`` (epoch seconds, typically the first event's ``t``) turns
    absolute timestamps into a run-relative clock.
    """
    t = record.get("t")
    if isinstance(t, (int, float)) and t0 is not None:
        clock = f"[{t - t0:8.2f}s]"
    else:
        clock = "[        ]"
    event = record.get("event", "?")
    suite = record.get("suite", "")
    label = record.get("label", "")
    index = record.get("index")
    where = f"{suite}[{index}] {label}".strip() if index is not None else suite
    if event == "bench_started":
        suites = record.get("suites", [])
        return f"{clock} bench started: {', '.join(suites)}"
    if event == "bench_finished":
        return f"{clock} bench finished"
    if event == "suite_started":
        return (
            f"{clock} {suite}: {record.get('pending', '?')} cell(s) to run"
            f" ({record.get('replayed', 0)} replayed,"
            f" jobs={record.get('jobs', 1)})"
        )
    if event == "suite_finished":
        return (
            f"{clock} {suite}: done —"
            f" {record.get('cells', '?')} cell(s),"
            f" {record.get('quarantined', 0)} quarantined,"
            f" {record.get('stalled', 0)} stalled"
            f" in {record.get('wall_seconds', 0.0):.2f}s"
        )
    if event == "cell_started":
        return f"{clock} {where}: started (attempt {record.get('attempt', 1)})"
    if event == "cell_finished":
        flag = " [stalled verdict]" if record.get("stalled") else ""
        return (
            f"{clock} {where}: finished in"
            f" {record.get('elapsed', 0.0):.3f}s{flag}"
        )
    if event == "cell_retried":
        return (
            f"{clock} {where}: attempt {record.get('attempt', '?')} failed"
            f" ({record.get('reason', '')}) — retrying in"
            f" {record.get('backoff', 0.0):.2f}s"
        )
    if event == "cell_stalled":
        return (
            f"{clock} {where}: stalled past"
            f" {record.get('timeout', 0.0):.1f}s — killing worker"
        )
    if event == "cell_quarantined":
        return (
            f"{clock} {where}: quarantined after"
            f" {record.get('attempts', '?')} attempt(s)"
            f" ({record.get('reason', '')})"
        )
    if event == "pool_rebuilt":
        return f"{clock} {suite}: worker pool rebuilt"
    extras = {
        k: v for k, v in record.items() if k not in ("t", "event", "cs")
    }
    return f"{clock} {event} {json.dumps(extras, sort_keys=True)}"
