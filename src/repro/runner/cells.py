"""The cell model: one grid point of an experiment suite.

A cell is the unit of scheduling, caching, and merging:

* **identity** — ``(suite, index)`` addresses the cell; ``params`` are
  the grid coordinates (family, n, seed, epsilon, phi, ...), fixed
  statically by the suite definition so that serial and parallel runs
  see exactly the same cells in exactly the same order;
* **determinism** — every random choice inside a cell derives from
  seeds stored in ``params``; nothing is drawn from shared state, so a
  cell's result is a pure function of its parameters (plus the code
  version, which the artifact cache hashes into its keys);
* **result** — a :class:`CellResult` is plain data (tuples, dicts,
  strings) so it crosses the ``ProcessPoolExecutor`` boundary under the
  ``spawn`` start method without pickling any live graph or simulator
  state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ExperimentCell:
    """One grid point: parameters only, no behavior."""

    suite: str
    index: int
    label: str
    params: Dict[str, Any]


@dataclass
class CellResult:
    """What one executed cell sends back to the merge step.

    ``rows`` hold *raw* values (not rendered strings); the suite's
    table assembly renders them, so serial and sharded runs format
    identically.  ``metrics`` is a :meth:`CongestMetrics.to_dict`
    payload when the cell ran a CONGEST simulation.  ``trace_lines``
    are JSONL round records when tracing was requested, labeled by
    cell so a merged sharded trace is unambiguous.  ``cache`` is the
    artifact-cache hit/miss delta attributable to this cell.
    ``telemetry`` is a :meth:`TelemetryRegistry.to_dict` payload when
    the cell ran under ``--telemetry``; the executor merges the
    payloads in grid order, so serial and sharded runs agree on every
    deterministic metric.
    """

    suite: str
    index: int
    label: str
    rows: List[Tuple] = field(default_factory=list)
    metrics: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    trace_lines: List[str] = field(default_factory=list)
    elapsed: float = 0.0
    cache: Dict[str, int] = field(default_factory=dict)
    telemetry: Optional[Dict[str, Any]] = None
    #: Executions it took the executor to land this result (1 = first
    #: try; >1 means the self-healing retry path was exercised).
    attempts: int = 1
    #: True when this result was replayed from a suite journal instead
    #: of computed in this run (see :mod:`repro.runner.journal`).
    replayed: bool = False
