"""Serial and process-parallel execution of suite cell grids.

``run_suite`` fans the cells of one suite out across a
``ProcessPoolExecutor`` (``--jobs N``) or runs them inline
(``jobs <= 1``).  Both paths execute the *same* per-cell code
(:func:`repro.runner.suites.execute_cell`) on the *same* statically
seeded cell list and merge results in grid order, so the assembled
table is byte-identical no matter the job count — the differential
guarantee ``tests/test_runner.py`` locks in.

Spawn safety: every task argument is a primitive tuple and every task
function is a module-level name, so the pool works identically under
the ``spawn`` start method (workers import ``repro`` fresh, nothing
inherited) — the differential tests exercise spawn explicitly.  The
*default* start method prefers ``fork`` where the platform offers it,
because spawning a worker re-imports numpy/scipy (~0.5 s each) and
that fixed cost would swamp sub-second suite grids.

Self-healing: long sweeps die to one bad cell far more often than to
anything else, so the parallel path is built to *absorb* cell failure
instead of aborting the suite:

* a cell that raises is retried up to ``retries`` times with a
  deterministic jittered exponential backoff;
* a cell that exceeds ``cell_timeout`` wall-clock seconds is killed
  with its (hung) worker — the pool is torn down, innocent in-flight
  cells are resubmitted without being charged an attempt, and the
  pool is rebuilt;
* a worker that dies outright (``BrokenProcessPool``) likewise
  triggers a rebuild, charging an attempt to every cell that was in
  flight (the culprit cannot be identified from the parent);
* a cell that exhausts its attempts is **quarantined**: recorded in
  ``SuiteRun.quarantined`` (and ``--stats-json``), excluded from the
  merged table, and the rest of the suite completes normally.

``Ctrl-C`` (or any other exception escaping the scheduling loop)
cancels all queued work and abandons the pool without waiting on hung
workers, so an interrupted ``repro bench`` returns to the prompt
promptly instead of leaking a process pool.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..cache import ArtifactCache, CacheStats, activate
from ..congest import CongestMetrics
from ..obs import TelemetryRegistry
from .cells import CellResult
from .journal import SuiteJournal, default_journal_path, run_fingerprint
from .progress import PROGRESS_SCHEMA_VERSION, ProgressLog
from .suites import SUITES, execute_cell

#: Worker-process-global cache, installed by the pool initializer so the
#: in-memory tier persists across the cells one worker executes.
_WORKER_CACHE: Optional[ArtifactCache] = None

#: First-retry backoff in seconds; doubles per attempt up to the cap.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0

#: How long the scheduling loop sleeps waiting for completions before
#: re-checking deadlines, in seconds.
_POLL_SECONDS = 0.05


def _worker_init(cache_root: Optional[str], use_cache: bool,
                 memory_items: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = (
        ArtifactCache(root=cache_root, memory_items=memory_items)
        if use_cache else None
    )


def _worker_run_cell(args) -> CellResult:
    suite_name, index, trace, telemetry, trace_detail, timeline = args
    with activate(_WORKER_CACHE):
        return execute_cell(
            suite_name, index, trace=trace, telemetry=telemetry,
            trace_detail=trace_detail, timeline=timeline,
        )


def default_start_method() -> str:
    """``fork`` where available (cheap workers), else ``spawn``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _backoff_seconds(suite: str, index: int, attempt: int) -> float:
    """Deterministic jittered exponential backoff before a retry.

    Seeding the jitter from the (suite, cell, attempt) coordinates
    keeps reruns reproducible while still de-synchronizing cells that
    failed together (e.g. all victims of one pool rebuild).
    """
    base = min(_BACKOFF_BASE * 2 ** (attempt - 1), _BACKOFF_CAP)
    jitter = random.Random(f"{suite}:{index}:{attempt}").uniform(0.5, 1.0)
    return base * jitter


def _result_stalled(result: CellResult) -> bool:
    """Did this cell's graded verdict say the algorithm stalled?"""
    return (
        isinstance(result.extra, dict)
        and isinstance(result.extra.get("verdict"), dict)
        and result.extra["verdict"].get("status") == "stalled"
    )


@dataclass
class QuarantinedCell:
    """A cell excluded from the merge after exhausting its attempts."""

    suite: str
    index: int
    label: str
    attempts: int
    reason: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "index": self.index,
            "label": self.label,
            "attempts": self.attempts,
            "reason": self.reason,
        }


@dataclass
class RecoveryStats:
    """What the self-healing machinery had to do during one run."""

    retries: int = 0        # resubmissions after a failed attempt
    timeouts: int = 0       # cells killed for exceeding cell_timeout
    pool_rebuilds: int = 0  # pools torn down (hung worker / broken pool)

    @property
    def intervened(self) -> bool:
        return bool(self.retries or self.timeouts or self.pool_rebuilds)

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
        }


@dataclass
class SuiteRun:
    """The merged outcome of one suite execution."""

    name: str
    jobs: int
    use_cache: bool
    results: List[CellResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    quarantined: List[QuarantinedCell] = field(default_factory=list)
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    #: Path of the write-ahead journal used, if any.
    journal_path: Optional[str] = None
    #: Journal lines skipped as unparseable during a resumed run.
    journal_corrupt_lines: int = 0

    @property
    def spec(self):
        return SUITES[self.name]

    def table(self):
        return self.spec.assemble_table(self.results)

    def render_table(self) -> str:
        return self.table().render()

    def merged_metrics(self) -> CongestMetrics:
        """Parallel-compose the CONGEST metrics of all simulated cells."""
        return CongestMetrics.merge_parallel(
            CongestMetrics.from_dict(r.metrics)
            for r in self.results if r.metrics is not None
        )

    def cache_stats(self) -> Dict[str, int]:
        stats = CacheStats()
        for result in self.results:
            stats.add(result.cache)
        return stats.as_dict()

    def merged_telemetry(self) -> Dict[str, object]:
        """Fold every cell's telemetry payload, in grid order.

        The fold is associative and commutative in everything except
        gauges (see :meth:`TelemetryRegistry.merge_dict`), and grid
        order pins the gauge tiebreak, so serial and sharded runs
        merge to the same payload.
        """
        registry = TelemetryRegistry()
        for result in sorted(self.results, key=lambda r: r.index):
            if result.telemetry:
                registry.merge_dict(result.telemetry)
        return registry.to_dict()

    def trace_lines(self) -> List[str]:
        lines: List[str] = []
        for result in sorted(self.results, key=lambda r: r.index):
            lines.extend(result.trace_lines)
        return lines

    def compute_seconds(self) -> float:
        return sum(r.elapsed for r in self.results)

    def replayed_cells(self) -> int:
        """Cells satisfied from the journal rather than computed."""
        return sum(1 for r in self.results if r.replayed)

    def stalled_cells(self) -> int:
        """Cells whose graded verdict is ``stalled`` (see
        :mod:`repro.resilience.validators`); 0 for suites that attach
        no verdicts."""
        return sum(
            1
            for r in self.results
            if isinstance(r.extra, dict)
            and isinstance(r.extra.get("verdict"), dict)
            and r.extra["verdict"].get("status") == "stalled"
        )

    def footer(self) -> str:
        """One status line summarizing the cells that need attention.

        A pure function of the merged results (journal replays included
        carry their verdicts), so serial, sharded, and resumed runs of
        the same grid render the identical footer.  Journal corruption
        is appended only when present: a clean run's footer is
        byte-identical whether or not it was journaled, and every
        skipped line is loud in the output rather than buried in a
        counter.
        """
        line = (
            f"{self.name}: {len(self.results)} cell(s), "
            f"{len(self.quarantined)} quarantined, "
            f"{self.stalled_cells()} stalled"
        )
        if self.journal_corrupt_lines:
            line += (
                f", {self.journal_corrupt_lines} corrupt journal "
                "line(s) skipped"
            )
        return line

    def summary(self) -> Dict[str, object]:
        stats = self.cache_stats()
        return {
            "suite": self.name,
            "cells": len(self.results),
            "jobs": self.jobs,
            "cache": stats,
            "wall_seconds": round(self.wall_seconds, 4),
            "compute_seconds": round(self.compute_seconds(), 4),
            "quarantined": [q.as_dict() for q in self.quarantined],
            "recovery": self.recovery.as_dict(),
            "replayed": self.replayed_cells(),
            "stalled": self.stalled_cells(),
            "journal_corrupt_lines": self.journal_corrupt_lines,
        }


def run_suite(
    name: str,
    jobs: int = 1,
    use_cache: bool = True,
    cache_root: Optional[str] = None,
    memory_items: int = 256,
    mp_start: Optional[str] = None,
    limit: Optional[int] = None,
    trace: bool = False,
    telemetry: bool = False,
    cell_timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[str] = None,
    resume: bool = False,
    trace_detail: bool = False,
    timeline: bool = False,
    progress: Optional[object] = None,
) -> SuiteRun:
    """Execute every cell of suite ``name`` and merge deterministically.

    ``jobs <= 1`` runs inline (no subprocesses); ``jobs > 1`` shards the
    cells across a process pool.  ``limit`` truncates the grid to its
    first ``limit`` cells (suites order cells smallest-first precisely
    so this is a cheap smoke slice).  Results always come back sorted
    by cell index, never by completion order.

    ``telemetry`` runs every cell inside its own telemetry scope (see
    :mod:`repro.obs`); :meth:`SuiteRun.merged_telemetry` folds the
    per-cell payloads back together in grid order.

    ``retries`` grants each cell that many extra attempts after a
    failure; ``cell_timeout`` bounds one attempt's wall-clock seconds
    (parallel runs only — an inline cell cannot be interrupted from
    within its own process).  Cells that exhaust their attempts are
    quarantined rather than aborting the suite; see the module
    docstring for the full recovery policy.

    ``journal`` names a write-ahead log (see :mod:`repro.runner
    .journal`): every completed cell is durably appended as it lands,
    so a killed run can be finished later with ``resume=True``, which
    replays journaled cells instead of recomputing them.  ``resume``
    with no explicit ``journal`` uses :func:`default_journal_path`
    under the cache root.  Replayed and recomputed cells merge into
    the same grid-ordered table, byte-identical to an uninterrupted
    run; quarantined cells are never journaled, so a resume retries
    them.

    ``trace_detail`` upgrades tracing to per-message event provenance
    (trace schema v5); ``timeline`` upgrades telemetry to capture span
    begin/end events for Chrome/Perfetto export.  Either implies its
    base flag.  ``progress`` names a heartbeat JSONL file (or passes an
    open :class:`~repro.runner.progress.ProgressLog`, so one file can
    span several suites): the executor emits flushed lifecycle events
    — cell started/finished/retried/stalled/quarantined — that
    ``repro trace tail`` follows live.
    """
    if name not in SUITES:
        raise KeyError(f"unknown suite {name!r} (known: {sorted(SUITES)})")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    trace = trace or trace_detail
    telemetry = telemetry or timeline
    own_progress = isinstance(progress, (str, os.PathLike))
    plog: Optional[ProgressLog] = (
        ProgressLog(progress) if own_progress else progress  # type: ignore[arg-type]
    )
    cells = SUITES[name].cells()
    if limit is not None:
        cells = cells[:max(0, limit)]
    labels = {cell.index: cell.label for cell in cells}
    indices = [cell.index for cell in cells]
    quarantined: List[QuarantinedCell] = []
    recovery = RecoveryStats()
    max_attempts = 1 + retries

    if journal is None and resume:
        journal = default_journal_path(name, cache_root)
    wal: Optional[SuiteJournal] = None
    replayed: Dict[int, CellResult] = {}
    if journal is not None:
        wal = SuiteJournal.open(
            journal,
            run_fingerprint(
                name, limit, trace, telemetry,
                trace_detail=trace_detail, timeline=timeline,
            ),
            resume=resume,
        )
        # Journaled cells outside the current grid (e.g. a larger
        # earlier --limit) stay in the journal but not in this table.
        replayed = {
            i: r for i, r in wal.completed.items() if i in labels
        }
    pending = [i for i in indices if i not in replayed]
    if plog is not None:
        plog.emit(
            "suite_started",
            schema=PROGRESS_SCHEMA_VERSION,
            suite=name,
            cells=len(indices),
            pending=len(pending),
            replayed=len(replayed),
            jobs=jobs,
        )

    start = time.perf_counter()
    try:
        if jobs <= 1 or len(pending) <= 1:
            cache = (
                ArtifactCache(root=cache_root, memory_items=memory_items)
                if use_cache else None
            )
            results: List[CellResult] = []
            with activate(cache):
                for i in pending:
                    attempt = 1
                    while True:
                        if plog is not None:
                            plog.emit(
                                "cell_started", suite=name, index=i,
                                label=labels[i], attempt=attempt,
                            )
                        try:
                            result = execute_cell(
                                name, i, trace=trace, telemetry=telemetry,
                                trace_detail=trace_detail, timeline=timeline,
                            )
                            result.attempts = attempt
                            results.append(result)
                            if wal is not None:
                                wal.record(result)
                            if plog is not None:
                                plog.emit(
                                    "cell_finished", suite=name, index=i,
                                    label=labels[i], attempt=attempt,
                                    elapsed=round(result.elapsed, 4),
                                    stalled=_result_stalled(result),
                                )
                            break
                        except Exception as exc:
                            reason = f"{type(exc).__name__}: {exc}"
                            if attempt >= max_attempts:
                                quarantined.append(QuarantinedCell(
                                    suite=name,
                                    index=i,
                                    label=labels[i],
                                    attempts=attempt,
                                    reason=reason,
                                ))
                                if plog is not None:
                                    plog.emit(
                                        "cell_quarantined", suite=name,
                                        index=i, label=labels[i],
                                        attempts=attempt, reason=reason,
                                    )
                                break
                            recovery.retries += 1
                            backoff = _backoff_seconds(name, i, attempt)
                            if plog is not None:
                                plog.emit(
                                    "cell_retried", suite=name, index=i,
                                    label=labels[i], attempt=attempt,
                                    reason=reason,
                                    backoff=round(backoff, 3),
                                )
                            time.sleep(backoff)
                            attempt += 1
            effective_jobs = 1
        else:
            effective_jobs = min(jobs, len(pending))
            results = _run_parallel(
                name=name,
                indices=pending,
                labels=labels,
                trace=trace,
                telemetry=telemetry,
                jobs=effective_jobs,
                mp_start=mp_start,
                cache_root=cache_root,
                use_cache=use_cache,
                memory_items=memory_items,
                cell_timeout=cell_timeout,
                max_attempts=max_attempts,
                quarantined=quarantined,
                recovery=recovery,
                wal=wal,
                trace_detail=trace_detail,
                timeline=timeline,
                plog=plog,
            )
    finally:
        if wal is not None:
            wal.close()
    wall = time.perf_counter() - start

    results.extend(replayed.values())
    results.sort(key=lambda r: r.index)
    quarantined.sort(key=lambda q: q.index)
    run = SuiteRun(
        name=name,
        jobs=effective_jobs,
        use_cache=use_cache,
        results=results,
        wall_seconds=wall,
        quarantined=quarantined,
        recovery=recovery,
        journal_path=journal,
        journal_corrupt_lines=wal.corrupt_lines if wal is not None else 0,
    )
    if plog is not None:
        plog.emit(
            "suite_finished",
            suite=name,
            cells=len(results),
            quarantined=len(quarantined),
            stalled=run.stalled_cells(),
            wall_seconds=round(wall, 3),
        )
        if own_progress:
            plog.close()
    return run


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers.

    ``shutdown(wait=False)`` alone leaves a hung worker running
    forever; the only way to reclaim it is to terminate the worker
    processes directly.  ``_processes`` is private but stable across
    the CPython versions we support, and the fallback is merely a
    leaked process, not an error.  The snapshot must be taken *before*
    ``shutdown``, which clears the attribute.
    """
    processes = dict(getattr(pool, "_processes", None) or {})
    for process in processes.values():
        try:
            process.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_parallel(
    name: str,
    indices: List[int],
    labels: Dict[int, str],
    trace: bool,
    telemetry: bool,
    jobs: int,
    mp_start: Optional[str],
    cache_root: Optional[str],
    use_cache: bool,
    memory_items: int,
    cell_timeout: Optional[float],
    max_attempts: int,
    quarantined: List[QuarantinedCell],
    recovery: RecoveryStats,
    wal: Optional[SuiteJournal] = None,
    trace_detail: bool = False,
    timeline: bool = False,
    plog: Optional[ProgressLog] = None,
) -> List[CellResult]:
    """The submit-driven scheduling loop with recovery; see module doc.

    Invariant: at most ``jobs`` futures are ever in flight, which with
    ``max_workers=jobs`` means every submitted future is *running* —
    so a future older than ``cell_timeout`` really is a stuck attempt,
    not one starving in the pool's queue.
    """
    context = multiprocessing.get_context(mp_start or default_start_method())

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_worker_init,
            initargs=(cache_root, use_cache, memory_items),
        )

    def charge_attempt(index: int, attempt: int, reason: str,
                       now: float) -> None:
        """A failed attempt: retry with backoff or quarantine."""
        if attempt >= max_attempts:
            quarantined.append(QuarantinedCell(
                suite=name,
                index=index,
                label=labels[index],
                attempts=attempt,
                reason=reason,
            ))
            if plog is not None:
                plog.emit(
                    "cell_quarantined", suite=name, index=index,
                    label=labels[index], attempts=attempt, reason=reason,
                )
        else:
            recovery.retries += 1
            backoff = _backoff_seconds(name, index, attempt)
            if plog is not None:
                plog.emit(
                    "cell_retried", suite=name, index=index,
                    label=labels[index], attempt=attempt, reason=reason,
                    backoff=round(backoff, 3),
                )
            heappush(delayed, (now + backoff, index, attempt + 1))

    results: List[CellResult] = []
    ready: List[Tuple[int, int]] = [(i, 1) for i in indices]  # (index, attempt)
    ready.reverse()  # pop() takes grid order
    delayed: List[Tuple[float, int, int]] = []  # (release time, index, attempt)
    in_flight: Dict = {}  # future -> (index, attempt, deadline or None)
    pool = make_pool()
    try:
        while ready or delayed or in_flight:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heappop(delayed)
                ready.append((index, attempt))
            while ready and len(in_flight) < jobs:
                index, attempt = ready.pop()
                future = pool.submit(
                    _worker_run_cell,
                    (name, index, trace, telemetry, trace_detail, timeline),
                )
                deadline = (
                    now + cell_timeout if cell_timeout is not None else None
                )
                in_flight[future] = (index, attempt, deadline)
                if plog is not None:
                    plog.emit(
                        "cell_started", suite=name, index=index,
                        label=labels[index], attempt=attempt,
                    )
            if not in_flight:
                # Everything is backing off; sleep to the next release.
                time.sleep(max(0.0, min(delayed[0][0] - now, _BACKOFF_CAP)))
                continue

            done, _ = wait(
                list(in_flight),
                timeout=_POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()

            pool_broken = False
            for future in done:
                index, attempt, _ = in_flight.pop(future)
                try:
                    result = future.result()
                    result.attempts = attempt
                    results.append(result)
                    if wal is not None:
                        wal.record(result)
                    if plog is not None:
                        plog.emit(
                            "cell_finished", suite=name, index=index,
                            label=labels[index], attempt=attempt,
                            elapsed=round(result.elapsed, 4),
                            stalled=_result_stalled(result),
                        )
                except BrokenProcessPool:
                    pool_broken = True
                    charge_attempt(
                        index, attempt, "worker process died", now
                    )
                except Exception as exc:
                    charge_attempt(
                        index, attempt,
                        f"{type(exc).__name__}: {exc}", now,
                    )

            overdue = [
                future
                for future, (_, _, deadline) in in_flight.items()
                if deadline is not None and deadline <= now
            ]
            if overdue:
                # A hung worker cannot be interrupted from the parent:
                # kill the whole pool, charge the overdue cells, and
                # resubmit the innocent bystanders at no attempt cost.
                recovery.timeouts += len(overdue)
                for future in overdue:
                    index, attempt, _ = in_flight.pop(future)
                    if plog is not None:
                        plog.emit(
                            "cell_stalled", suite=name, index=index,
                            label=labels[index], attempt=attempt,
                            timeout=cell_timeout,
                        )
                    charge_attempt(
                        index, attempt,
                        f"timed out after {cell_timeout:.1f}s", now,
                    )
                pool_broken = True

            if pool_broken:
                recovery.pool_rebuilds += 1
                for future, (index, attempt, _) in in_flight.items():
                    if future.done() and future.exception() is None:
                        result = future.result()
                        result.attempts = attempt
                        results.append(result)
                        if wal is not None:
                            wal.record(result)
                        if plog is not None:
                            plog.emit(
                                "cell_finished", suite=name, index=index,
                                label=labels[index], attempt=attempt,
                                elapsed=round(result.elapsed, 4),
                                stalled=_result_stalled(result),
                            )
                    else:
                        ready.append((index, attempt))
                in_flight.clear()
                _terminate_pool(pool)
                pool = make_pool()
                if plog is not None:
                    plog.emit("pool_rebuilt", suite=name)
    finally:
        # Normal exit leaves nothing queued, so this is a clean close.
        # On KeyboardInterrupt (or any escaping error) it cancels all
        # pending work and abandons hung workers instead of blocking.
        if in_flight:
            for future in in_flight:
                future.cancel()
            _terminate_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
    return results
