"""Serial and process-parallel execution of suite cell grids.

``run_suite`` fans the cells of one suite out across a
``ProcessPoolExecutor`` (``--jobs N``) or runs them inline
(``jobs <= 1``).  Both paths execute the *same* per-cell code
(:func:`repro.runner.suites.execute_cell`) on the *same* statically
seeded cell list and merge results in grid order, so the assembled
table is byte-identical no matter the job count — the differential
guarantee ``tests/test_runner.py`` locks in.

Spawn safety: every task argument is a primitive tuple and every task
function is a module-level name, so the pool works identically under
the ``spawn`` start method (workers import ``repro`` fresh, nothing
inherited) — the differential tests exercise spawn explicitly.  The
*default* start method prefers ``fork`` where the platform offers it,
because spawning a worker re-imports numpy/scipy (~0.5 s each) and
that fixed cost would swamp sub-second suite grids.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cache import ArtifactCache, CacheStats, activate
from ..congest import CongestMetrics
from .cells import CellResult
from .suites import SUITES, execute_cell

#: Worker-process-global cache, installed by the pool initializer so the
#: in-memory tier persists across the cells one worker executes.
_WORKER_CACHE: Optional[ArtifactCache] = None


def _worker_init(cache_root: Optional[str], use_cache: bool,
                 memory_items: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = (
        ArtifactCache(root=cache_root, memory_items=memory_items)
        if use_cache else None
    )


def _worker_run_cell(args) -> CellResult:
    suite_name, index, trace = args
    with activate(_WORKER_CACHE):
        return execute_cell(suite_name, index, trace=trace)


def default_start_method() -> str:
    """``fork`` where available (cheap workers), else ``spawn``."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


@dataclass
class SuiteRun:
    """The merged outcome of one suite execution."""

    name: str
    jobs: int
    use_cache: bool
    results: List[CellResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def spec(self):
        return SUITES[self.name]

    def table(self):
        return self.spec.assemble_table(self.results)

    def render_table(self) -> str:
        return self.table().render()

    def merged_metrics(self) -> CongestMetrics:
        """Parallel-compose the CONGEST metrics of all simulated cells."""
        return CongestMetrics.merge_parallel(
            CongestMetrics.from_dict(r.metrics)
            for r in self.results if r.metrics is not None
        )

    def cache_stats(self) -> Dict[str, int]:
        stats = CacheStats()
        for result in self.results:
            stats.add(result.cache)
        return stats.as_dict()

    def trace_lines(self) -> List[str]:
        lines: List[str] = []
        for result in sorted(self.results, key=lambda r: r.index):
            lines.extend(result.trace_lines)
        return lines

    def compute_seconds(self) -> float:
        return sum(r.elapsed for r in self.results)

    def summary(self) -> Dict[str, object]:
        stats = self.cache_stats()
        return {
            "suite": self.name,
            "cells": len(self.results),
            "jobs": self.jobs,
            "cache": stats,
            "wall_seconds": round(self.wall_seconds, 4),
            "compute_seconds": round(self.compute_seconds(), 4),
        }


def run_suite(
    name: str,
    jobs: int = 1,
    use_cache: bool = True,
    cache_root: Optional[str] = None,
    memory_items: int = 256,
    mp_start: Optional[str] = None,
    limit: Optional[int] = None,
    trace: bool = False,
) -> SuiteRun:
    """Execute every cell of suite ``name`` and merge deterministically.

    ``jobs <= 1`` runs inline (no subprocesses); ``jobs > 1`` shards the
    cells across a process pool.  ``limit`` truncates the grid to its
    first ``limit`` cells (suites order cells smallest-first precisely
    so this is a cheap smoke slice).  Results always come back sorted
    by cell index, never by completion order.
    """
    if name not in SUITES:
        raise KeyError(f"unknown suite {name!r} (known: {sorted(SUITES)})")
    cells = SUITES[name].cells()
    if limit is not None:
        cells = cells[:max(0, limit)]
    indices = [cell.index for cell in cells]

    start = time.perf_counter()
    if jobs <= 1 or len(indices) <= 1:
        cache = (
            ArtifactCache(root=cache_root, memory_items=memory_items)
            if use_cache else None
        )
        with activate(cache):
            results = [execute_cell(name, i, trace=trace) for i in indices]
        effective_jobs = 1
    else:
        effective_jobs = min(jobs, len(indices))
        context = multiprocessing.get_context(mp_start or default_start_method())
        tasks = [(name, i, trace) for i in indices]
        with ProcessPoolExecutor(
            max_workers=effective_jobs,
            mp_context=context,
            initializer=_worker_init,
            initargs=(cache_root, use_cache, memory_items),
        ) as pool:
            results = list(pool.map(_worker_run_cell, tasks, chunksize=1))
    wall = time.perf_counter() - start

    results.sort(key=lambda r: r.index)
    return SuiteRun(
        name=name,
        jobs=effective_jobs,
        use_cache=use_cache,
        results=results,
        wall_seconds=wall,
    )
