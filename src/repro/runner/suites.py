"""Suite definitions: the E-suite sweeps as explicit cell grids.

Each suite declares (a) its cell list — the full parameter grid in a
fixed order — and (b) a module-level cell function that turns one cell
into rows + metrics.  Both benchmarks (``benchmarks/test_e*.py``) and
the ``repro bench`` CLI consume the same definitions, so the table a
benchmark asserts over is the same table the CLI prints, cell for cell.

Cell functions are ordinary top-level functions so the parallel
executor can address them by reference under the ``spawn`` start
method; all expensive intermediates route through :mod:`repro.cache`
(a no-op when no cache is active).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis import Table
from ..cache import (
    active_cache,
    cached_expander_decomposition,
    cached_graph,
    simulation_salt,
)
from ..congest import TraceSession
from ..congest.message import MessageBudget
from ..obs.registry import telemetry_scope
from ..decomposition.expander import phi_for_epsilon, verify_expander_decomposition
from .cells import CellResult, ExperimentCell


@dataclass(frozen=True)
class SuiteSpec:
    """One experiment suite: a titled table over a cell grid."""

    name: str
    title: str
    columns: Tuple[str, ...]
    description: str
    build_cells: Callable[[], List[ExperimentCell]]
    cell_fn: Callable[[ExperimentCell], Tuple[List[Tuple], Optional[Dict], Dict]]
    #: Hidden suites are omitted from :func:`suite_names` (and thus the
    #: CLI default sweep); they exist for the runner's own tests.
    hidden: bool = False

    def cells(self) -> List[ExperimentCell]:
        return self.build_cells()

    def assemble_table(self, results: List[CellResult]) -> Table:
        """Merge per-cell rows into the suite table, in grid order."""
        table = Table(self.title, list(self.columns))
        for result in sorted(results, key=lambda r: r.index):
            for row in result.rows:
                table.add_row(*row)
        return table


# ----------------------------------------------------------------------
# E01 — expander decomposition quality (family x epsilon grid)
# ----------------------------------------------------------------------

_E01_FAMILIES: Tuple[Tuple[str, str, Dict[str, Any]], ...] = (
    ("grid", "grid", {"rows": 16, "cols": 16}),
    ("tri-grid", "trigrid", {"rows": 16, "cols": 16}),
    ("delaunay", "delaunay", {"n": 256, "seed": 11}),
    ("k-tree(3)", "ktree", {"n": 256, "k": 3, "seed": 12}),
    ("torus", "torus", {"rows": 16, "cols": 16}),
)

_E01_EPSILONS = (0.1, 0.2, 0.3, 0.4)


def _e01_cells() -> List[ExperimentCell]:
    cells = []
    for family_label, generator, gen_params in _E01_FAMILIES:
        for epsilon in _E01_EPSILONS:
            cells.append(ExperimentCell(
                suite="E01",
                index=len(cells),
                label=f"E01[{family_label},eps={epsilon}]",
                params={
                    "family": family_label,
                    "generator": generator,
                    "generator_params": dict(gen_params),
                    "epsilon": epsilon,
                    "seed": 0,
                },
            ))
    return cells


def _run_e01(cell: ExperimentCell):
    p = cell.params
    g = cached_graph(p["generator"], p["generator_params"])
    epsilon = p["epsilon"]
    phi = phi_for_epsilon(epsilon, g.m)
    dec = cached_expander_decomposition(g, epsilon, phi=phi, seed=p["seed"])
    report = verify_expander_decomposition(dec)
    row = (
        p["family"], g.n, g.m, epsilon, dec.phi, dec.k,
        report["cut_fraction"], report["min_certificate"],
        int(report["max_cluster_size"]),
    )
    extra = {"cut_fraction": report["cut_fraction"],
             "min_certificate": report["min_certificate"]}
    return [row], None, extra


# ----------------------------------------------------------------------
# E03 — walk vs tree gathering on the largest clusters
# ----------------------------------------------------------------------

_E03_GRAPH = {"n": 200, "seed": 31}
_E03_PHI = 0.04
_E03_TOP_CLUSTERS = 3


def _e03_cells() -> List[ExperimentCell]:
    cells = []
    for rank in range(_E03_TOP_CLUSTERS):
        for transport in ("walk", "tree"):
            cells.append(ExperimentCell(
                suite="E03",
                index=len(cells),
                label=f"E03[cluster{rank},{transport}]",
                params={
                    "generator": "delaunay",
                    "generator_params": dict(_E03_GRAPH),
                    "decomposition_epsilon": 0.9,
                    "phi": _E03_PHI,
                    "decomposition_seed": 0,
                    "rank": rank,
                    "transport": transport,
                    "gather_seed": 7,
                },
            ))
    return cells


def _run_e03(cell: ExperimentCell):
    from ..routing import gather_topology

    p = cell.params
    g = cached_graph(p["generator"], p["generator_params"])
    dec = cached_expander_decomposition(
        g, p["decomposition_epsilon"], phi=p["phi"],
        seed=p["decomposition_seed"], enforce_budget=False,
    )
    ranked = sorted(dec.clusters, key=len, reverse=True)
    cluster = ranked[p["rank"]]
    cluster_index = dec.clusters.index(cluster)
    sub = g.subgraph(cluster)
    result = gather_topology(
        sub,
        phi=max(dec.phi, dec.certificates[cluster_index]),
        seed=p["gather_seed"],
        network_n=g.n,
        transport=p["transport"],
    )
    m = result.metrics
    row = (
        p["rank"], sub.n, sub.m, p["transport"],
        m.rounds, m.effective_rounds, m.max_edge_congestion,
        m.max_message_bits, result.success,
    )
    extra = {
        "success": result.success,
        "topology_complete": result.topology_complete(sub),
        "network_n": g.n,
    }
    return [row], m.to_dict(), extra


# ----------------------------------------------------------------------
# E10 — framework cost scaling across n, replicated over seeds
# ----------------------------------------------------------------------

_E10_NS = (64, 128, 256, 384, 512)
_E10_SEEDS = (102, 202, 302)
_E10_GRAPH_SEED = 101
_E10_EPSILON = 0.9
_E10_PHI = 0.05


def _e10_cells() -> List[ExperimentCell]:
    cells = []
    # Smallest instances first so `--limit k` is a cheap smoke slice.
    for n in _E10_NS:
        for seed in _E10_SEEDS:
            cells.append(ExperimentCell(
                suite="E10",
                index=len(cells),
                label=f"E10[n={n},seed={seed}]",
                params={
                    "generator": "delaunay",
                    "generator_params": {"n": n, "seed": _E10_GRAPH_SEED},
                    "epsilon": _E10_EPSILON,
                    "phi": _E10_PHI,
                    "seed": seed,
                },
            ))
    return cells


def _degree_solver(sub, leader, notes):
    return {v: sub.degree(v) for v in sub.vertices()}


def _run_e10(cell: ExperimentCell):
    from ..core.framework import run_framework

    p = cell.params
    g = cached_graph(p["generator"], p["generator_params"])
    result = run_framework(
        g, p["epsilon"], solver=_degree_solver, phi=p["phi"], seed=p["seed"]
    )
    budget = MessageBudget(g.n).bits
    m = result.metrics
    row = (
        g.n, p["seed"], len(result.clusters), m.rounds, m.effective_rounds,
        m.total_messages, m.max_message_bits, budget, m.max_edge_congestion,
    )
    extra = {"budget_bits": budget}
    return [row], m.to_dict(), extra


# ----------------------------------------------------------------------
# E11 — fault tolerance: graded verdicts under increasing drop rates
# ----------------------------------------------------------------------

_E11_GRAPH = {"n": 48, "seed": 41}
_E11_DROPS = (0.0, 0.01, 0.05, 0.2)
_E11_ALGORITHMS = ("maxis", "framework")
_E11_EPSILON = 0.9
_E11_PHI = 0.05


def _e11_cells() -> List[ExperimentCell]:
    cells = []
    # Drop-major with the cheap algorithm first, so cell 0 (the CI
    # fault-smoke slice) is the fault-free maxis run with a forced
    # `correct` verdict.
    for drop in _E11_DROPS:
        for algorithm in _E11_ALGORITHMS:
            cells.append(ExperimentCell(
                suite="E11",
                index=len(cells),
                label=f"E11[{algorithm},drop={drop}]",
                params={
                    "generator": "delaunay",
                    "generator_params": dict(_E11_GRAPH),
                    "algorithm": algorithm,
                    "drop": drop,
                    "fault_seed": 1100 + len(cells),
                    "epsilon": _E11_EPSILON,
                    "phi": _E11_PHI,
                    "seed": 5,
                },
            ))
    return cells


def _run_e11(cell: ExperimentCell):
    from ..congest import FaultPlan, use_faults
    from ..resilience import (
        Verdict,
        validate_framework,
        validate_independent_set,
    )

    p = cell.params
    g = cached_graph(p["generator"], p["generator_params"])
    plan = FaultPlan(seed=p["fault_seed"], drop=p["drop"])
    metrics = None
    # Message loss may break the run outright (a gather that cannot
    # verify, a protocol that trips an invariant): that is a graded
    # outcome for this suite, not an error.
    try:
        with use_faults(plan):
            if p["algorithm"] == "maxis":
                from ..independent_set.greedy import luby_mis

                mis, result = luby_mis(g, seed=p["seed"])
                metrics = result.metrics
                verdict = validate_independent_set(g, mis)
            else:
                from ..core.framework import run_framework

                result = run_framework(
                    g, p["epsilon"], solver=_degree_solver,
                    phi=p["phi"], seed=p["seed"],
                )
                metrics = result.metrics
                verdict = validate_framework(result)
    except Exception as exc:  # noqa: BLE001 — graded, not propagated
        verdict = Verdict.failed(f"{type(exc).__name__}: {exc}")
    row = (
        p["algorithm"], p["drop"], g.n,
        metrics.rounds if metrics is not None else 0,
        metrics.total_messages if metrics is not None else 0,
        metrics.messages_dropped if metrics is not None else 0,
        verdict.label(),
    )
    extra = {"verdict": verdict.to_dict()}
    return [row], metrics.to_dict() if metrics is not None else None, extra


# ----------------------------------------------------------------------
# E12 — churn: crashes and rejoining vertices, graded verdicts
# ----------------------------------------------------------------------

_E12_GRAPH = {"n": 48, "seed": 41}
_E12_ALGORITHMS = ("maxis", "framework")
#: Churn modes: fault-free baseline, permanent crashes, and full churn
#: (the same crashes, with both vertices rejoining later — restoring
#: from local snapshots taken every ``_E12_INTERVAL`` steps).
_E12_CHURN = ("none", "crash", "churn")
_E12_CRASHES = ((3, 4), (17, 6))
_E12_REJOINS = ((3, 9), (17, 12))
_E12_INTERVAL = 3
_E12_EPSILON = 0.9
_E12_PHI = 0.05


def _e12_cells() -> List[ExperimentCell]:
    cells = []
    # Churn-major with the cheap algorithm first, so cell 0 (the CI
    # smoke slice) is the churn-free maxis run with a forced `correct`
    # verdict.
    for churn in _E12_CHURN:
        for algorithm in _E12_ALGORITHMS:
            cells.append(ExperimentCell(
                suite="E12",
                index=len(cells),
                label=f"E12[{algorithm},churn={churn}]",
                params={
                    "generator": "delaunay",
                    "generator_params": dict(_E12_GRAPH),
                    "algorithm": algorithm,
                    "churn": churn,
                    "fault_seed": 1200 + len(cells),
                    "epsilon": _E12_EPSILON,
                    "phi": _E12_PHI,
                    "seed": 5,
                },
            ))
    return cells


def _e12_plan(params):
    from ..congest import FaultPlan

    churn = params["churn"]
    if churn == "none":
        return FaultPlan(seed=params["fault_seed"])
    if churn == "crash":
        return FaultPlan(seed=params["fault_seed"], crashes=_E12_CRASHES)
    return FaultPlan(
        seed=params["fault_seed"],
        crashes=_E12_CRASHES,
        rejoins=_E12_REJOINS,
        checkpoint_interval=_E12_INTERVAL,
    )


def _run_e12(cell: ExperimentCell):
    from ..congest import use_faults
    from ..resilience import (
        Verdict,
        validate_framework,
        validate_independent_set,
    )

    p = cell.params
    g = cached_graph(p["generator"], p["generator_params"])
    plan = _e12_plan(p)
    metrics = None
    # Unhardened algorithms are *expected* to degrade or fail under
    # churn (a rejoined vertex lost its mail and possibly its state);
    # that is a graded outcome for this suite, not an error.
    try:
        with use_faults(plan):
            if p["algorithm"] == "maxis":
                from ..independent_set.greedy import luby_mis

                mis, result = luby_mis(g, seed=p["seed"])
                metrics = result.metrics
                verdict = validate_independent_set(g, mis)
            else:
                from ..core.framework import run_framework

                result = run_framework(
                    g, p["epsilon"], solver=_degree_solver,
                    phi=p["phi"], seed=p["seed"],
                )
                metrics = result.metrics
                verdict = validate_framework(result)
    except Exception as exc:  # noqa: BLE001 — graded, not propagated
        verdict = Verdict.failed(f"{type(exc).__name__}: {exc}")
    faults = metrics.fault_summary() if metrics is not None else {}
    row = (
        p["algorithm"], p["churn"], g.n,
        metrics.rounds if metrics is not None else 0,
        metrics.total_messages if metrics is not None else 0,
        faults.get("vertices_crashed", 0),
        faults.get("vertices_rejoined", 0),
        verdict.label(),
    )
    extra = {"verdict": verdict.to_dict()}
    return [row], metrics.to_dict() if metrics is not None else None, extra


# ----------------------------------------------------------------------
# E15 — temporal adversity: churn, partitions, and message delay
# ----------------------------------------------------------------------

_E15_GRAPH = {"n": 48, "seed": 41}
_E15_ALGORITHMS = ("maxis", "matching", "framework")
#: Adversity modes: fault-free baseline, topology churn (scheduled
#: edge arrivals / departures / up-windows), a partition window that
#: splits the network in half and heals, and keyed-hash message delay.
_E15_ADVERSITY = ("static", "churn", "partition", "delay")
_E15_EPSILON = 0.9
_E15_PHI = 0.05
_E15_DELAY = 0.2
_E15_MAX_DELAY = 3
_E15_PARTITION_WINDOW = (2, 6)


def _e15_cells() -> List[ExperimentCell]:
    cells = []
    # Algorithm-major with the cheap algorithm first, so `--limit 4`
    # (the CI smoke slice) covers every adversity mode on maxis alone.
    for algorithm in _E15_ALGORITHMS:
        for adversity in _E15_ADVERSITY:
            cells.append(ExperimentCell(
                suite="E15",
                index=len(cells),
                label=f"E15[{algorithm},{adversity}]",
                params={
                    "generator": "delaunay",
                    "generator_params": dict(_E15_GRAPH),
                    "algorithm": algorithm,
                    "adversity": adversity,
                    "fault_seed": 1500 + len(cells),
                    "epsilon": _E15_EPSILON,
                    "phi": _E15_PHI,
                    "seed": 5,
                },
            ))
    return cells


def _e15_plan(params, g):
    from ..congest import EdgeWindow, FaultPlan, PartitionWindow
    from ..graph import edge_key

    adversity = params["adversity"]
    seed = params["fault_seed"]
    if adversity == "static":
        return FaultPlan(seed=seed)
    if adversity == "churn":
        # Deterministic strided slices over the canonical edge list:
        # every 7th edge arrives late, another stride departs early,
        # and a third stride exists only inside an up-window.  The
        # strides are disjoint residues, so no edge gets two schedules.
        edges = sorted(edge_key(u, v) for u, v in g.edges())
        return FaultPlan(
            seed=seed,
            edge_arrivals=tuple((u, v, 4) for u, v in edges[::7]),
            edge_departures=tuple((u, v, 9) for u, v in edges[3::7]),
            edge_up_windows=tuple(
                EdgeWindow(u, v, 0, 5) for u, v in edges[5::11]
            ),
        )
    if adversity == "partition":
        # Split the canonical vertex order in half for a round window,
        # then heal: the algorithm must survive total isolation of the
        # halves and still converge afterwards.
        order = sorted(g.vertices())
        half = len(order) // 2
        start, end = _E15_PARTITION_WINDOW
        return FaultPlan(
            seed=seed,
            partitions=(
                PartitionWindow(
                    (tuple(order[:half]), tuple(order[half:])), start, end
                ),
            ),
        )
    return FaultPlan(seed=seed, delay=_E15_DELAY, max_delay=_E15_MAX_DELAY)


def _run_e15(cell: ExperimentCell):
    from ..congest import use_faults
    from ..resilience import (
        Verdict,
        validate_framework,
        validate_independent_set,
        validate_matching,
    )

    p = cell.params
    g = cached_graph(p["generator"], p["generator_params"])
    plan = _e15_plan(p, g)
    metrics = None
    # Network adversity is *expected* to degrade, stall, or break the
    # unhardened algorithms; every outcome is graded, not propagated.
    try:
        with use_faults(plan):
            if p["algorithm"] == "maxis":
                from ..independent_set.greedy import luby_mis

                mis, result = luby_mis(g, seed=p["seed"])
                metrics = result.metrics
                if not result.halted:
                    verdict = Verdict.stalled(
                        f"not halted after {metrics.rounds} rounds"
                    )
                else:
                    verdict = validate_independent_set(g, mis)
            elif p["algorithm"] == "matching":
                from ..matching.distributed import (
                    distributed_maximal_matching,
                )

                matching, result = distributed_maximal_matching(
                    g, seed=p["seed"]
                )
                metrics = result.metrics
                if not result.halted:
                    verdict = Verdict.stalled(
                        f"not halted after {metrics.rounds} rounds"
                    )
                else:
                    verdict = validate_matching(g, matching)
            else:
                from ..core.framework import run_framework

                result = run_framework(
                    g, p["epsilon"], solver=_degree_solver,
                    phi=p["phi"], seed=p["seed"],
                )
                metrics = result.metrics
                verdict = validate_framework(result)
    except Exception as exc:  # noqa: BLE001 — graded, not propagated
        verdict = Verdict.failed(f"{type(exc).__name__}: {exc}")
    faults = metrics.fault_summary() if metrics is not None else {}
    lost = (
        faults.get("messages_dropped", 0)
        + faults.get("messages_lost_topology", 0)
        + faults.get("messages_partitioned", 0)
    )
    row = (
        p["algorithm"], p["adversity"], g.n,
        metrics.rounds if metrics is not None else 0,
        metrics.total_messages if metrics is not None else 0,
        lost,
        faults.get("messages_delayed", 0),
        verdict.label(),
    )
    extra = {"verdict": verdict.to_dict()}
    return [row], metrics.to_dict() if metrics is not None else None, extra


# ----------------------------------------------------------------------
# CHAOS — hidden suite driving the executor's recovery machinery
# ----------------------------------------------------------------------

#: Cell misbehavior schedule.  With ``REPRO_CHAOS_DIR`` unset every
#: cell is healthy, so the healthy subset of a chaos run can be
#: compared byte-for-byte against a fault-free serial run.  Ordered so
#: ``--limit`` slices isolate behaviors: limit=2 exercises only the
#: flaky retry path, limit=4 adds the hung worker, and only the full
#: grid reaches the crashing cell.
_CHAOS_BEHAVIORS = ("ok", "flaky", "ok", "hang", "ok", "crash")


def _chaos_cells() -> List[ExperimentCell]:
    return [
        ExperimentCell(
            suite="CHAOS",
            index=i,
            label=f"CHAOS[{i}:{behavior}]",
            params={"behavior": behavior, "value": i},
        )
        for i, behavior in enumerate(_CHAOS_BEHAVIORS)
    ]


def _run_chaos(cell: ExperimentCell):
    import os

    behavior = cell.params["behavior"]
    chaos_dir = os.environ.get("REPRO_CHAOS_DIR")
    if chaos_dir:
        if behavior == "crash":
            os._exit(17)  # hard worker death -> BrokenProcessPool
        if behavior == "hang":
            time.sleep(3600)  # never returns; only cell_timeout saves us
        if behavior == "flaky":
            marker = os.path.join(chaos_dir, f"flaky-{cell.index}")
            if not os.path.exists(marker):
                with open(marker, "w") as handle:
                    handle.write("attempted\n")
                raise RuntimeError("injected flaky failure (first attempt)")
    row = (cell.index, behavior, (cell.params["value"] + 1) * 10)
    return [row], None, {}


# ----------------------------------------------------------------------
# Registry + the worker-side entry point
# ----------------------------------------------------------------------

SUITES: Dict[str, SuiteSpec] = {
    "E01": SuiteSpec(
        name="E01",
        title="E1: expander decomposition (cut fraction <= eps, certified phi)",
        columns=("family", "n", "m", "eps", "phi", "clusters", "cut_frac",
                 "min_cert", "max|V_i|"),
        description="Decomposition quality across minor-free families.",
        build_cells=_e01_cells,
        cell_fn=_run_e01,
    ),
    "E03": SuiteSpec(
        name="E03",
        title="E3: gathering G[V_i] to the leader, walk (Lemma 2.4) vs tree",
        columns=("cluster", "n_i", "m_i", "transport", "rounds", "eff_rounds",
                 "max_congestion", "max_bits", "success"),
        description="Random-walk vs BFS-tree information gathering.",
        build_cells=_e03_cells,
        cell_fn=_run_e03,
    ),
    "E10": SuiteSpec(
        name="E10",
        title=("E10: framework cost vs n "
               "(delaunay, eps = 0.9, phi = 0.05, 3 seeds)"),
        columns=("n", "seed", "clusters", "rounds", "eff_rounds", "messages",
                 "max_bits", "budget_bits", "congestion"),
        description="Round/congestion scaling of the Theorem 2.6 framework.",
        build_cells=_e10_cells,
        cell_fn=_run_e10,
    ),
    "E11": SuiteSpec(
        name="E11",
        title=("E11: fault tolerance (delaunay n=48, drop rate sweep, "
               "graded verdicts)"),
        columns=("algorithm", "drop", "n", "rounds", "messages", "dropped",
                 "verdict"),
        description="Graded algorithm outcomes under message-drop faults.",
        build_cells=_e11_cells,
        cell_fn=_run_e11,
    ),
    "E12": SuiteSpec(
        name="E12",
        title=("E12: crash-recovery churn (delaunay n=48, "
               "crash / crash+rejoin schedules, graded verdicts)"),
        columns=("algorithm", "churn", "n", "rounds", "messages",
                 "crashed", "rejoined", "verdict"),
        description="Graded algorithm outcomes under vertex churn.",
        build_cells=_e12_cells,
        cell_fn=_run_e12,
    ),
    "E15": SuiteSpec(
        name="E15",
        title=("E15: temporal adversity (delaunay n=48, churn / "
               "partition / delay schedules, graded verdicts)"),
        columns=("algorithm", "adversity", "n", "rounds", "messages",
                 "lost", "delayed", "verdict"),
        description="Graded outcomes under dynamic-network adversity.",
        build_cells=_e15_cells,
        cell_fn=_run_e15,
    ),
    "CHAOS": SuiteSpec(
        name="CHAOS",
        title="CHAOS: executor recovery exercises (hidden)",
        columns=("cell", "behavior", "value"),
        description="Deliberately misbehaving cells for executor tests.",
        build_cells=_chaos_cells,
        cell_fn=_run_chaos,
        hidden=True,
    ),
}


def suite_names() -> List[str]:
    """Public suite names (hidden test-only suites excluded)."""
    return sorted(name for name, spec in SUITES.items() if not spec.hidden)


def execute_cell(
    suite_name: str,
    index: int,
    trace: bool = False,
    telemetry: bool = False,
    trace_detail: bool = False,
    timeline: bool = False,
) -> CellResult:
    """Run one cell in the current process and package its result.

    Uses whatever artifact cache is currently active (see
    :func:`repro.cache.activate`); cache statistics are reported as the
    delta this cell caused, which sums correctly across any sharding.

    With ``telemetry`` the cell runs inside its own telemetry scope —
    identically inline and in a worker process — and the registry
    payload rides back on :attr:`CellResult.telemetry`.

    ``trace_detail`` implies ``trace`` and records per-message event
    provenance (trace schema v5, see :mod:`repro.congest.trace`);
    ``timeline`` implies ``telemetry`` and additionally captures span
    begin/end events for Chrome/Perfetto export.
    """
    trace = trace or trace_detail
    telemetry = telemetry or timeline
    spec = SUITES[suite_name]
    cells = spec.cells()
    cell = cells[index]
    cache = active_cache()
    before = cache.stats.snapshot() if cache is not None else None

    start = time.perf_counter()
    trace_lines: List[str] = []
    telemetry_data = None

    def run_traced():
        with TraceSession(detail=trace_detail) as session:
            out = spec.cell_fn(cell)
        for i, recorder in enumerate(session.recorders):
            recorder.label = f"{cell.label}/sim{i}"
            dumped = recorder.dumps_jsonl()
            if dumped:
                trace_lines.extend(dumped.splitlines())
        return out

    if telemetry:
        # Telemetry, like tracing, needs the simulation to actually
        # run, so it bypasses the cell-result tier (intermediate
        # artifacts still apply).  The per-cell span makes each cell a
        # distinct path in the merged span tree.
        with telemetry_scope(timeline=timeline) as registry:
            with registry.span(f"cell:{cell.label}"):
                if trace:
                    rows, metrics, extra = run_traced()
                else:
                    rows, metrics, extra = spec.cell_fn(cell)
        telemetry_data = registry.to_dict()
    elif trace:
        # Tracing needs the simulation to actually run, so it bypasses
        # the cell-result tier (intermediate artifacts still apply).
        rows, metrics, extra = run_traced()
    elif cache is not None:
        # Cell results are themselves content-addressed artifacts: the
        # key covers the full grid coordinates plus a salt over the
        # whole source tree, so any code change recomputes the cell.
        key = cache.key(
            "cell", suite_name, cell.params, salt=simulation_salt()
        )
        rows, metrics, extra = cache.get_or_compute(
            "cell", key, lambda: spec.cell_fn(cell)
        )
    else:
        rows, metrics, extra = spec.cell_fn(cell)
    elapsed = time.perf_counter() - start

    cache_delta = (
        cache.stats.delta_since(before) if cache is not None and before is not None
        else {}
    )
    return CellResult(
        suite=suite_name,
        index=index,
        label=cell.label,
        rows=rows,
        metrics=metrics,
        extra=extra,
        trace_lines=trace_lines,
        elapsed=elapsed,
        cache=cache_delta,
        telemetry=telemetry_data,
    )
