"""The Theorem 2.6 framework: partition, gather, solve, broadcast.

``run_framework`` is the library's single most important entry point.
Given an H-minor-free network, a budget ``epsilon``, and a sequential
``solver`` to run on each cluster's topology, it:

1. computes an (epsilon', phi) expander decomposition with
   epsilon' = epsilon / t where t bounds the edge density (so the
   number of inter-cluster edges is at most epsilon * min(|V|, |E|),
   exactly the Theorem 2.6 guarantee);
2. in every cluster — all clusters run in parallel in the real
   network, which the metric aggregation models — elects the
   maximum-degree leader, orients edges to O(1) out-degree, and routes
   the topology to the leader via random walks (Lemma 2.4);
3. runs the solver at each leader and delivers one O(log n)-bit answer
   to every vertex over the reversed routes (Section 2.3);
4. reports per-cluster failure verdicts per the Section 2.3 semantics.

Every application in the paper (Sections 3.1-3.5 and Theorem 1.1) is a
thin wrapper over this function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..congest import CongestMetrics
from ..decomposition.expander import (
    ExpanderDecomposition,
    expander_decomposition,
    phi_for_epsilon,
)
from ..errors import DecompositionError, GraphError
from ..graph import Graph
from ..obs import registry as _telemetry
from ..rng import SeedLike, ensure_rng
from ..routing.gather import (
    Annotator,
    ClusterSolver,
    GatherResult,
    gather_topology,
)
from .failure import degree_condition_holds, diameter_bound, diameter_within


@dataclass
class ClusterRun:
    """One cluster's execution record."""

    index: int
    vertices: Set
    leader: Any
    certificate: float
    gather: GatherResult
    degree_condition_ok: bool
    diameter_ok: bool

    @property
    def success(self) -> bool:
        return self.gather.success and self.degree_condition_ok and self.diameter_ok


@dataclass
class PartitionResult:
    """Theorem 2.6 output without an application solver."""

    graph: Graph
    epsilon: float
    effective_epsilon: float
    phi: float
    decomposition: ExpanderDecomposition
    clusters: List[ClusterRun]
    metrics: CongestMetrics

    @property
    def leaders(self) -> List[Any]:
        return [c.leader for c in self.clusters]

    @property
    def all_succeeded(self) -> bool:
        return all(c.success for c in self.clusters)

    def inter_cluster_edges(self) -> int:
        return len(self.decomposition.cut_edges)


@dataclass
class FrameworkResult(PartitionResult):
    """Partition plus the per-vertex answers of the application solver."""

    answers: Dict[Any, Any] = field(default_factory=dict)


def parallel_merge(metrics_list: List[CongestMetrics]) -> CongestMetrics:
    """Compose executions that run *in parallel* on edge-disjoint clusters.

    Rounds compose as a maximum (all clusters advance in the same
    global rounds), volumes as sums, and congestion as a maximum.
    """
    return CongestMetrics.merge_parallel(metrics_list)


def density_bound(graph: Graph) -> float:
    """Measured stand-in for the Thomason bound t with |E| <= t |V|.

    The paper fixes t from the excluded minor H; since our inputs are
    generated (not promised), we use the measured density, which is at
    most the analytic t for every family in the suite.
    """
    if graph.n == 0:
        return 1.0
    return max(1.0, graph.m / graph.n)


def partition_minor_free(
    graph: Graph,
    epsilon: float,
    phi: Optional[float] = None,
    seed: SeedLike = None,
    solver: Optional[ClusterSolver] = None,
    transport: str = "walk",
    enforce_budget: bool = True,
    annotate: Optional[Annotator] = None,
    cut_slack: float = 1.0,
    max_cluster_size: Optional[int] = None,
) -> FrameworkResult:
    """Run the full Theorem 2.6 pipeline (optionally with a solver).

    Returns a :class:`FrameworkResult`; when ``solver`` is None the
    ``answers`` dict is empty and the result doubles as the pure
    partition of Theorem 2.6 (used by, e.g., Theorem 1.5).
    """
    if graph.n == 0:
        raise GraphError("cannot partition an empty graph")
    rng = ensure_rng(seed)

    # Theorem 2.6 parameterization: epsilon' = epsilon / t.
    t = density_bound(graph)
    effective_epsilon = min(0.999, epsilon / t)
    if phi is None:
        phi = phi_for_epsilon(effective_epsilon, max(1, graph.m))
    # The decomposition seed is drawn from the outer rng either way, so
    # a cache hit leaves the RNG stream — and therefore every later
    # cluster gather — exactly where a recomputation would have left it.
    decomposition_seed = rng.getrandbits(64)
    from ..cache import active_cache, cached_expander_decomposition

    if active_cache() is not None:
        decomposition = cached_expander_decomposition(
            graph,
            effective_epsilon,
            phi=phi,
            seed=decomposition_seed,
            enforce_budget=enforce_budget,
            cut_slack=cut_slack,
            max_cluster_size=max_cluster_size,
        )
    else:
        decomposition = expander_decomposition(
            graph,
            effective_epsilon,
            phi=phi,
            seed=decomposition_seed,
            enforce_budget=enforce_budget,
            cut_slack=cut_slack,
            max_cluster_size=max_cluster_size,
        )

    diameter_cap = diameter_bound(phi, graph.n)
    runs: List[ClusterRun] = []
    cluster_metrics: List[CongestMetrics] = []
    with _telemetry.span("partition"):
        for i, cluster_vertices in enumerate(decomposition.clusters):
            sub = graph.subgraph(cluster_vertices)
            certificate = decomposition.certificates[i]
            cluster_phi = max(phi, certificate)
            with _telemetry.span("gather"):
                gather = gather_topology(
                    sub,
                    phi=cluster_phi,
                    density_bound=t,
                    solver=solver,
                    seed=rng.getrandbits(64),
                    network_n=graph.n,
                    transport=transport,
                    annotate=annotate,
                )
            runs.append(
                ClusterRun(
                    index=i,
                    vertices=set(cluster_vertices),
                    leader=gather.leader,
                    certificate=certificate,
                    gather=gather,
                    degree_condition_ok=degree_condition_holds(
                        sub, cluster_phi
                    ),
                    diameter_ok=diameter_within(sub, diameter_cap),
                )
            )
            cluster_metrics.append(gather.metrics)

    metrics = parallel_merge(cluster_metrics)
    _telemetry.count("framework.runs")
    _telemetry.count("framework.clusters", len(runs))
    _telemetry.count(
        "framework.failed_clusters",
        sum(1 for run in runs if not run.success),
    )
    answers: Dict[Any, Any] = {}
    for run in runs:
        answers.update(run.gather.answers)
    return FrameworkResult(
        graph=graph,
        epsilon=epsilon,
        effective_epsilon=effective_epsilon,
        phi=phi,
        decomposition=decomposition,
        clusters=runs,
        metrics=metrics,
        answers=answers,
    )


def run_framework(
    graph: Graph,
    epsilon: float,
    solver: ClusterSolver,
    phi: Optional[float] = None,
    seed: SeedLike = None,
    transport: str = "walk",
    annotate: Optional[Annotator] = None,
    cut_slack: float = 1.0,
    max_cluster_size: Optional[int] = None,
    enforce_budget: bool = True,
) -> FrameworkResult:
    """Partition + gather + solve + broadcast, with a mandatory solver.

    This is the "similar to the use of network decompositions in the
    LOCAL model" workflow of the paper's abstract: each leader runs
    ``solver`` on its cluster's exact topology and every vertex learns
    its own O(log n)-bit share of the result.
    """
    if solver is None:
        raise GraphError("run_framework requires a solver")
    return partition_minor_free(
        graph,
        epsilon,
        phi=phi,
        seed=seed,
        solver=solver,
        transport=transport,
        annotate=annotate,
        cut_slack=cut_slack,
        max_cluster_size=max_cluster_size,
        enforce_budget=enforce_budget,
    )
