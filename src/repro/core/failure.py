"""Failure semantics of the framework (Section 2.3).

Theorem 2.6 may be run on graphs that are *not* H-minor-free (the
property tester does exactly that), and its randomized pieces may fail
with probability 1/poly(n).  The paper specifies how every failure mode
is *detected*:

* clusters whose diameter exceeds the O(phi^-1 log n) bound of a
  successful execution are detected by the marking protocol and reset
  to singletons (:func:`singletonize_failed_clusters`);
* the Lemma 2.3 degree condition deg(v*) = Omega(phi^2)|E_i| is
  checkable in O(phi^-1 log n) rounds — its failure certifies that the
  network is not H-minor-free (:func:`degree_condition_holds`);
* lost routing messages are detected by reversing the route, which the
  walk-exchange primitive performs natively.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Set

from ..graph import Graph

#: Explicit constant in the Lemma 2.3 condition deg(v*) >= c * phi^2 * |E_i|.
#: Lemma 2.3 only guarantees some constant depending on H; 1/4 is the
#: value that holds with margin across every minor-free family in the
#: benchmark suite while rejecting genuine expanders (hypercubes,
#: random regular graphs), as experiment E2 verifies.
DEGREE_CONDITION_CONSTANT = 0.25


def diameter_bound(phi: float, n: int, constant: float = 4.0) -> int:
    """The O(phi^-1 log n) diameter bound of a phi-expander cluster."""
    if phi <= 0:
        return n
    return max(1, math.ceil(constant * math.log2(n + 2) / phi))


def diameter_within(cluster: Graph, bound: int) -> bool:
    """Does every component of the cluster have diameter <= bound?

    Centralized fast path for the paper's distributed marking protocol,
    which is implemented faithfully (message-by-message) in
    :mod:`repro.routing.diameter_check`; the framework uses this exact
    predicate for speed, and the tests pin the two against each other.
    """
    for comp in cluster.connected_components():
        if cluster.subgraph(comp).diameter() > bound:
            return False
    return True


def degree_condition_holds(
    cluster: Graph,
    phi: float,
    constant: float = DEGREE_CONDITION_CONSTANT,
) -> bool:
    """Check Lemma 2.3's condition: max degree >= constant * phi^2 * |E_i|.

    On an H-minor-free graph this holds for every cluster of an
    (epsilon, phi) expander decomposition (the edge-separator argument
    of Theorem 1.6); its violation is a *certificate* that the network
    is not H-minor-free, which the property tester turns into a Reject.
    """
    if cluster.n <= 1:
        return True
    return cluster.max_degree() >= constant * phi * phi * cluster.m


def singletonize_failed_clusters(
    clusters: List[Set],
    failed: Iterable[int],
) -> List[Set]:
    """Reset every failed cluster to singletons (Section 2.3 recovery).

    A vertex that detects that its cluster's execution failed "resets
    its cluster to {v}"; the returned clustering replaces each failed
    cluster by one singleton per vertex, keeping the others untouched.
    """
    failed_set = set(failed)
    result: List[Set] = []
    for i, cluster in enumerate(clusters):
        if i in failed_set:
            result.extend({v} for v in sorted(cluster, key=repr))
        else:
            result.append(set(cluster))
    return result
