"""The paper's core contribution: the Theorem 2.6 framework.

Decompose an H-minor-free network into certified expander clusters,
elect a high-degree leader in each (its existence is Lemma 2.3), gather
each cluster's full topology at its leader, run an arbitrary sequential
algorithm there, and deliver a distinct O(log n)-bit answer back to
every vertex — all within the CONGEST message budget.
"""

from .framework import (
    ClusterRun,
    FrameworkResult,
    PartitionResult,
    parallel_merge,
    partition_minor_free,
    run_framework,
)
from .failure import (
    degree_condition_holds,
    diameter_within,
    singletonize_failed_clusters,
)

__all__ = [
    "ClusterRun",
    "FrameworkResult",
    "PartitionResult",
    "parallel_merge",
    "partition_minor_free",
    "run_framework",
    "degree_condition_holds",
    "diameter_within",
    "singletonize_failed_clusters",
]
