"""Core undirected graph data structure.

The library uses its own small graph class rather than ``networkx`` for
three reasons: (1) the CONGEST simulator needs tight control over
adjacency iteration order for determinism, (2) the decomposition code
calls volume/cut/conductance primitives in hot loops, and (3) keeping
the substrate self-contained lets the test suite use ``networkx`` as an
*independent oracle* instead of a dependency of the code under test.

Vertices are arbitrary hashable objects, though the generators in
:mod:`repro.generators` always produce contiguous integers, which is
what the CONGEST simulator expects for its ID-based symmetry breaking.
Edges are undirected, simple (no self loops, no parallel edges), and
carry a float weight (default ``1.0``).
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-NumPy CI leg
    np = None

from .errors import GraphError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def edge_key(u: Vertex, v: Vertex) -> Edge:
    """Canonical (sorted) key for the undirected edge ``{u, v}``.

    Sorting is by ``repr`` when the endpoints are not mutually
    orderable, so mixed vertex types still get a stable canonical form.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def canonical_vertex_order(vertices: Iterable[Vertex]) -> List[Vertex]:
    """Vertices in canonical order: natural sort, with a typed fallback.

    Integer vertices (what every generator produces) sort numerically —
    unlike the historical ``key=repr`` ordering, which put 10 before 2.
    Mixed or unorderable vertex sets fall back to sorting by
    ``(type name, repr)`` so the order stays total and deterministic.
    """
    vs = list(vertices)
    try:
        return sorted(vs)  # type: ignore[type-var]
    except TypeError:
        return sorted(vs, key=lambda v: (type(v).__name__, repr(v)))


class Graph:
    """A simple undirected graph with float edge weights.

    The class deliberately exposes the vocabulary of the paper:
    :meth:`volume`, :meth:`boundary`, :meth:`cut_size`, and
    :meth:`conductance_of_cut` implement the quantities vol(S),
    ∂(S), |∂(S)|, and Φ(S) from Section 2.
    """

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        self._m: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> "Graph":
        """Build a graph from an edge list (all weights 1)."""
        g = cls()
        if vertices is not None:
            for v in vertices:
                g.add_vertex(v)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    @classmethod
    def from_weighted_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex, float]],
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> "Graph":
        """Build a graph from ``(u, v, weight)`` triples."""
        g = cls()
        if vertices is not None:
            for v in vertices:
                g.add_vertex(v)
        for u, v, w in edges:
            g.add_edge(u, v, w)
        return g

    def copy(self) -> "Graph":
        """Return a deep copy of this graph."""
        g = Graph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        g._m = self._m
        return g

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        self._adj.setdefault(v, {})

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}``.

        Endpoints are created if missing.  Re-adding an existing edge
        overwrites its weight.  Self loops are rejected because none of
        the paper's objects (matchings, independent sets, cuts) are
        defined on them.
        """
        if u == v:
            raise GraphError(f"self loops are not supported (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._m += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raises if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._m -= 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges; raises if absent."""
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]

    def remove_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Remove every vertex in ``vertices``."""
        for v in vertices:
            self.remove_vertex(v)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def vertices(self) -> List[Vertex]:
        """All vertices, in insertion order."""
        return list(self._adj)

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def edges(self) -> List[Edge]:
        """Each undirected edge exactly once, in canonical key form."""
        seen: Set[FrozenSet] = set()
        out: List[Edge] = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    out.append(edge_key(u, v))
        return out

    def weighted_edges(self) -> List[Tuple[Vertex, Vertex, float]]:
        """Each undirected edge once, as ``(u, v, weight)``."""
        return [(u, v, self._adj[u][v]) for u, v in self.edges()]

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of edge ``{u, v}``; raises if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        return self._adj[u][v]

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.weighted_edges())

    def neighbors(self, v: Vertex) -> List[Vertex]:
        """Neighbors of ``v``, in insertion order."""
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        return list(self._adj[v])

    def degree(self, v: Vertex) -> int:
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Δ(G); zero for the empty graph."""
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def min_degree(self) -> int:
        """Minimum degree; zero for the empty graph."""
        return min((len(nbrs) for nbrs in self._adj.values()), default=0)

    def edge_density(self) -> float:
        """|E| / |V| — the density quantity the paper uses (Section 2.2)."""
        if self.n == 0:
            return 0.0
        return self.m / self.n

    # ------------------------------------------------------------------
    # Cuts, volumes, conductance (Section 2 vocabulary)
    # ------------------------------------------------------------------
    def volume(self, s: Iterable[Vertex]) -> int:
        """vol(S): sum of degrees of the vertices in S."""
        return sum(self.degree(v) for v in s)

    def boundary(self, s: Iterable[Vertex]) -> List[Edge]:
        """∂(S): the edges with exactly one endpoint in S."""
        s_set = set(s)
        out: List[Edge] = []
        for u in s_set:
            for v in self._adj[u]:
                if v not in s_set:
                    out.append(edge_key(u, v))
        return out

    def cut_size(self, s: Iterable[Vertex]) -> int:
        """|∂(S)|: the number of edges crossing the cut ``{S, V\\S}``."""
        s_set = set(s)
        return sum(
            1 for u in s_set for v in self._adj[u] if v not in s_set
        )

    def cut_weight(self, s: Iterable[Vertex]) -> float:
        """Total weight of the edges crossing the cut ``{S, V\\S}``."""
        s_set = set(s)
        return sum(
            self._adj[u][v]
            for u in s_set
            for v in self._adj[u]
            if v not in s_set
        )

    def conductance_of_cut(self, s: Iterable[Vertex]) -> float:
        """Φ(S) = |∂(S)| / min(vol(S), vol(V\\S)); 0 for trivial cuts."""
        s_set = set(s)
        if not s_set or len(s_set) == self.n:
            return 0.0
        vol_s = self.volume(s_set)
        vol_rest = 2 * self.m - vol_s
        denom = min(vol_s, vol_rest)
        if denom == 0:
            # A side made entirely of isolated vertices: conventionally
            # conductance 0 (it is a "free" cut crossing no edges).
            return 0.0
        return self.cut_size(s_set) / denom

    def sparsity_of_cut(self, s: Iterable[Vertex]) -> float:
        """Ψ(S) = |∂(S)| / min(|S|, |V\\S|) (Lemma 2.5 vocabulary)."""
        s_set = set(s)
        if not s_set or len(s_set) == self.n:
            return 0.0
        denom = min(len(s_set), self.n - len(s_set))
        return self.cut_size(s_set) / denom

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Vertex-induced subgraph G[S] (weights preserved).

        Vertices are inserted in *canonical* order, so the subgraph's
        adjacency iteration order depends only on the vertex set, never
        on the order (or set-iteration history) of ``vertices``.  This
        is what lets cache-rehydrated cluster sets (:mod:`repro.cache`)
        drive bit-identical simulations: a ``set`` deserialized from
        disk may iterate differently from the freshly computed one, but
        every consumer goes through this canonical subgraph.
        """
        s_set = set(vertices)
        missing = s_set - set(self._adj)
        if missing:
            raise GraphError(f"vertices not in graph: {sorted(map(repr, missing))}")
        order = canonical_vertex_order(s_set)
        g = Graph()
        g_adj = g._adj
        for v in order:
            g_adj[v] = {}
        # Fill adjacency rows directly: each undirected edge is visited
        # once from each endpoint, so the half-edge count is even.
        half_edges = 0
        for u in order:
            row = g_adj[u]
            for v, w in self._adj[u].items():
                if v in s_set:
                    row[v] = w
                    half_edges += 1
        g._m = half_edges // 2
        return g

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Subgraph induced by an edge set (vertices = edge endpoints)."""
        g = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
            g.add_edge(u, v, self._adj[u][v])
        return g

    def remove_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Copy of this graph with ``edges`` removed (vertices kept)."""
        g = self.copy()
        for u, v in edges:
            if g.has_edge(u, v):
                g.remove_edge(u, v)
        return g

    def relabeled(self) -> Tuple["Graph", Dict[Vertex, int]]:
        """Copy with vertices renamed to 0..n-1; returns (graph, old→new)."""
        mapping = {v: i for i, v in enumerate(self._adj)}
        g = Graph()
        for v in self._adj:
            g.add_vertex(mapping[v])
        for u, v, w in self.weighted_edges():
            g.add_edge(mapping[u], mapping[v], w)
        return g, mapping

    # ------------------------------------------------------------------
    # Traversal / connectivity
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Vertex) -> Dict[Vertex, int]:
        """Unweighted distances from ``source`` to all reachable vertices."""
        if source not in self._adj:
            raise GraphError(f"vertex {source!r} not in graph")
        dist = {source: 0}
        queue = deque([source])
        adj = self._adj
        pop = queue.popleft
        push = queue.append
        while queue:
            u = pop()
            du = dist[u] + 1
            for v in adj[u]:
                if v not in dist:
                    dist[v] = du
                    push(v)
        return dist

    def bfs_layers(self, source: Vertex) -> List[List[Vertex]]:
        """Vertices of the component of ``source`` grouped by BFS depth."""
        dist = self.bfs_distances(source)
        if not dist:
            return []
        layers: List[List[Vertex]] = [[] for _ in range(max(dist.values()) + 1)]
        for v, d in dist.items():
            layers[d].append(v)
        return layers

    def connected_components(self) -> List[Set[Vertex]]:
        """All connected components, as vertex sets."""
        seen: Set[Vertex] = set()
        comps: List[Set[Vertex]] = []
        for v in self._adj:
            if v in seen:
                continue
            comp = set(self.bfs_distances(v))
            seen |= comp
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        first = next(iter(self._adj))
        return len(self.bfs_distances(first)) == self.n

    def eccentricity(self, v: Vertex) -> int:
        """Max distance from ``v`` within its component."""
        return max(self.bfs_distances(v).values(), default=0)

    def diameter(self) -> int:
        """Exact diameter (∞→raises on disconnected graphs).

        Runs a BFS from every vertex, so intended for the cluster-sized
        graphs the framework manipulates, not the whole network.
        """
        if self.n == 0:
            return 0
        if not self.is_connected():
            raise GraphError("diameter of a disconnected graph is infinite")
        return max(self.eccentricity(v) for v in self._adj)

    def shortest_path(self, source: Vertex, target: Vertex) -> Optional[List[Vertex]]:
        """One unweighted shortest path, or ``None`` if unreachable."""
        if source not in self._adj or target not in self._adj:
            raise GraphError("endpoints must be in the graph")
        parent: Dict[Vertex, Optional[Vertex]] = {source: None}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            if u == target:
                path = [u]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                return path[::-1]
            for v in self._adj[u]:
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        return None

    # ------------------------------------------------------------------
    # Matrix / interop
    # ------------------------------------------------------------------
    def adjacency_matrix(self, order: Optional[Sequence[Vertex]] = None) -> np.ndarray:
        """Dense 0/1 adjacency matrix (weights ignored).

        ``order`` fixes the row/column ordering; defaults to insertion
        order.
        """
        if np is None:
            raise GraphError("adjacency_matrix requires numpy")
        if order is None:
            order = self.vertices()
        index = {v: i for i, v in enumerate(order)}
        if len(index) != self.n:
            raise GraphError("order must enumerate each vertex exactly once")
        a = np.zeros((self.n, self.n))
        for u, nbrs in self._adj.items():
            i = index[u]
            for v in nbrs:
                a[i, index[v]] = 1.0
        return a

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (used only by tests/oracles)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_weighted_edges_from(self.weighted_edges())
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Convert from a ``networkx.Graph``; weights default to 1."""
        g = cls()
        for v in nxg.nodes:
            g.add_vertex(v)
        for u, v, data in nxg.edges(data=True):
            if u == v:
                continue
            g.add_edge(u, v, float(data.get("weight", 1.0)))
        return g

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return {
            (edge_key(u, v), w) for u, v, w in self.weighted_edges()
        } == {(edge_key(u, v), w) for u, v, w in other.weighted_edges()}

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)
