"""E7 — (1 - epsilon) agreement-max correlation clustering (Theorem 1.3).

Claims under test: the framework clustering scores at least
(1 - epsilon) * gamma(G), chargeable because gamma(G) >= |E|/2 (the
Section 3.3 bound, realized by the trivial baselines); on planted
community workloads it also dominates both trivial clusterings and
approaches the noise-free consistency ceiling.
"""

import pytest

from repro.analysis import Table
from repro.correlation import (
    best_trivial_clustering,
    distributed_correlation_clustering,
    local_search_correlation,
)
from repro.generators import (
    delaunay_planar_graph,
    k_tree,
    planted_signs,
)

from _util import record_table, reset_result


def test_e07_noise_sweep(benchmark):
    reset_result("E07.txt")
    table = Table(
        "E7: correlation clustering on planted communities (eps = 0.3)",
        ["family", "noise", "|E|", "trivial", "framework",
         "centralized_ls", "frac_of_|E|"],
    )
    epsilon = 0.3
    for family, g in [
        ("delaunay(90)", delaunay_planar_graph(90, seed=71)),
        ("k-tree(90)", k_tree(90, 3, seed=72)),
    ]:
        for noise in (0.0, 0.1, 0.25):
            signs, _truth = planted_signs(g, 3, noise=noise, seed=73)
            _, trivial = best_trivial_clustering(g, signs)
            _, central = local_search_correlation(g, signs, seed=74)
            result = distributed_correlation_clustering(
                g, signs, epsilon, seed=75
            )
            table.add_row(
                family, noise, g.m, trivial, result.score, central,
                result.score / g.m,
            )
            # Theorem 1.3 with gamma(G) >= |E|/2.
            assert result.score >= (1 - epsilon) * g.m / 2
            # Must dominate what a single vertex could do alone.
            assert result.score >= trivial - 2
    record_table("E07.txt", table)

    g = delaunay_planar_graph(90, seed=71)
    signs, _ = planted_signs(g, 3, noise=0.1, seed=73)
    benchmark.pedantic(
        lambda: distributed_correlation_clustering(g, signs, 0.3, seed=75),
        rounds=2,
        iterations=1,
    )


def test_e07_noise_free_consistency(benchmark):
    """Zero noise => the planted clustering is perfectly consistent and
    the framework should score (1 - eps)-close to |E|."""
    table = Table(
        "E7b: noise-free score vs |E|",
        ["seed", "|E|", "score", "fraction"],
    )
    fractions = []
    for seed in range(3):
        g = delaunay_planar_graph(80, seed=seed)
        signs, _ = planted_signs(g, 2, noise=0.0, seed=seed)
        result = distributed_correlation_clustering(g, signs, 0.2, seed=seed)
        table.add_row(seed, g.m, result.score, result.score / g.m)
        fractions.append(result.score / g.m)
    record_table("E07.txt", table)
    assert min(fractions) >= 0.8

    g = delaunay_planar_graph(80, seed=0)
    signs, _ = planted_signs(g, 2, noise=0.0, seed=0)
    benchmark.pedantic(
        lambda: distributed_correlation_clustering(g, signs, 0.2, seed=0),
        rounds=2,
        iterations=1,
    )
