"""E4 — (1 - epsilon)-approximate MAXIS (Theorem 1.2 / Section 3.1).

Claim under test: on H-minor-free networks the framework's independent
set reaches at least (1 - epsilon) of the optimum, while the classic
CONGEST baselines (an MIS, min-degree greedy) only guarantee 1/Delta
and n/(2d+1) respectively — the gap the theorem narrows.
"""

import pytest

from repro.analysis import Table
from repro.generators import delaunay_planar_graph, k_tree, triangulated_grid_graph
from repro.independent_set import (
    distributed_maxis,
    exact_maxis,
    greedy_min_degree_is,
    luby_mis,
)

from _util import record_table, reset_result

FAMILIES = [
    ("delaunay", lambda: delaunay_planar_graph(110, seed=41)),
    ("tri-grid", lambda: triangulated_grid_graph(10, 11)),
    ("k-tree(3)", lambda: k_tree(110, 3, seed=42)),
]


def test_e04_ratio_sweep(benchmark):
    reset_result("E04.txt")
    table = Table(
        "E4: MAXIS approximation ratios (distributed vs baselines)",
        ["family", "n", "eps", "opt", "framework", "ratio",
         "greedy_ratio", "mis_ratio"],
    )
    for name, make in FAMILIES:
        g = make()
        opt = len(exact_maxis(g))
        greedy = len(greedy_min_degree_is(g))
        mis, _ = luby_mis(g, seed=43)
        for epsilon in (0.15, 0.3):
            result = distributed_maxis(g, epsilon, seed=44)
            ratio = result.size / opt
            table.add_row(
                name, g.n, epsilon, opt, result.size, ratio,
                greedy / opt, len(mis) / opt,
            )
            assert ratio >= 1 - epsilon
    record_table("E04.txt", table)

    g = FAMILIES[0][1]()
    benchmark.pedantic(
        lambda: distributed_maxis(g, 0.3, seed=44), rounds=2, iterations=1
    )


def test_e04_framework_beats_mis_baseline(benchmark):
    """The headline LOCAL-CONGEST gap: framework >> MIS on these inputs."""
    table = Table(
        "E4b: framework vs Luby MIS across seeds (delaunay 110)",
        ["seed", "opt", "framework", "luby_mis"],
    )
    wins = 0
    for seed in range(4):
        g = delaunay_planar_graph(110, seed=seed)
        opt = len(exact_maxis(g))
        framework = distributed_maxis(g, 0.2, seed=seed).size
        mis = len(luby_mis(g, seed=seed)[0])
        table.add_row(seed, opt, framework, mis)
        if framework >= mis:
            wins += 1
    record_table("E04.txt", table)
    assert wins >= 3  # the MIS baseline should essentially never win

    g = delaunay_planar_graph(110, seed=0)
    benchmark.pedantic(lambda: luby_mis(g, seed=0), rounds=3, iterations=1)
