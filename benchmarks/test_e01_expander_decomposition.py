"""E1 — (epsilon, phi) expander decomposition quality (Theorems 2.1/2.6).

Claim under test: for every epsilon, the decomposition cuts at most an
epsilon fraction of the edges and every cluster carries a certified
conductance lower bound of at least phi, across all the minor-free
graph families the paper names.
"""

import pytest

from repro.analysis import Table
from repro.decomposition import expander_decomposition
from repro.generators import delaunay_planar_graph

from _util import record_table, run_recorded_suite


def test_e01_cut_budget_and_certificates(benchmark):
    """The E01 grid (family x epsilon), executed as runner cells.

    The table is assembled from per-cell result objects (see
    ``repro.runner.suites``); the claims are asserted over each cell's
    raw row values, which are identical however the grid is sharded.
    """
    run = run_recorded_suite("E01", "E01.txt")
    assert len(run.results) == 20
    for cell in run.results:
        (family, n, m, eps, phi, clusters, cut_frac, min_cert, max_size), = (
            cell.rows
        )
        assert cut_frac <= eps
        assert min_cert >= phi

    g = delaunay_planar_graph(256, seed=11)
    benchmark.pedantic(
        lambda: expander_decomposition(g, 0.2, seed=0), rounds=3, iterations=1
    )


def test_e01_phi_sweep_controls_cluster_size(benchmark):
    """Larger phi => smaller clusters (the Lemma 2.3 size force)."""
    table = Table(
        "E1b: explicit phi sweep on delaunay(300)",
        ["phi", "clusters", "cut_frac", "max|V_i|", "min_cert"],
    )
    g = delaunay_planar_graph(300, seed=13)
    previous_max = float("inf")
    maxima = []
    for phi in (0.01, 0.03, 0.06, 0.1):
        dec = expander_decomposition(
            g, 0.99, phi=phi, seed=0, enforce_budget=False
        )
        largest = max(len(c) for c in dec.clusters)
        maxima.append(largest)
        table.add_row(
            phi, dec.k, dec.cut_fraction(), largest, dec.min_certificate()
        )
    record_table("E01.txt", table)
    assert maxima[-1] <= maxima[0]
    benchmark.pedantic(
        lambda: expander_decomposition(
            g, 0.99, phi=0.05, seed=0, enforce_budget=False
        ),
        rounds=3,
        iterations=1,
    )
