"""E1 — (epsilon, phi) expander decomposition quality (Theorems 2.1/2.6).

Claim under test: for every epsilon, the decomposition cuts at most an
epsilon fraction of the edges and every cluster carries a certified
conductance lower bound of at least phi, across all the minor-free
graph families the paper names.
"""

import pytest

from repro.analysis import Table
from repro.decomposition import (
    expander_decomposition,
    verify_expander_decomposition,
)
from repro.generators import (
    delaunay_planar_graph,
    grid_graph,
    k_tree,
    toroidal_grid_graph,
    triangulated_grid_graph,
)

from _util import record_table, reset_result

FAMILIES = [
    ("grid", lambda n: grid_graph(int(n ** 0.5), int(n ** 0.5))),
    ("tri-grid", lambda n: triangulated_grid_graph(int(n ** 0.5), int(n ** 0.5))),
    ("delaunay", lambda n: delaunay_planar_graph(n, seed=11)),
    ("k-tree(3)", lambda n: k_tree(n, 3, seed=12)),
    ("torus", lambda n: toroidal_grid_graph(int(n ** 0.5), int(n ** 0.5))),
]

EPSILONS = [0.1, 0.2, 0.3, 0.4]


def test_e01_cut_budget_and_certificates(benchmark):
    reset_result("E01.txt")
    table = Table(
        "E1: expander decomposition (cut fraction <= eps, certified phi)",
        ["family", "n", "m", "eps", "phi", "clusters", "cut_frac",
         "min_cert", "max|V_i|"],
    )
    for name, make in FAMILIES:
        for epsilon in EPSILONS:
            g = make(256)
            dec = expander_decomposition(g, epsilon, seed=0)
            report = verify_expander_decomposition(dec)
            table.add_row(
                name, g.n, g.m, epsilon, dec.phi, dec.k,
                report["cut_fraction"], report["min_certificate"],
                int(report["max_cluster_size"]),
            )
            assert report["cut_fraction"] <= epsilon
            assert report["min_certificate"] >= dec.phi
    record_table("E01.txt", table)

    g = delaunay_planar_graph(256, seed=11)
    benchmark.pedantic(
        lambda: expander_decomposition(g, 0.2, seed=0), rounds=3, iterations=1
    )


def test_e01_phi_sweep_controls_cluster_size(benchmark):
    """Larger phi => smaller clusters (the Lemma 2.3 size force)."""
    table = Table(
        "E1b: explicit phi sweep on delaunay(300)",
        ["phi", "clusters", "cut_frac", "max|V_i|", "min_cert"],
    )
    g = delaunay_planar_graph(300, seed=13)
    previous_max = float("inf")
    maxima = []
    for phi in (0.01, 0.03, 0.06, 0.1):
        dec = expander_decomposition(
            g, 0.99, phi=phi, seed=0, enforce_budget=False
        )
        largest = max(len(c) for c in dec.clusters)
        maxima.append(largest)
        table.add_row(
            phi, dec.k, dec.cut_fraction(), largest, dec.min_certificate()
        )
    record_table("E01.txt", table)
    assert maxima[-1] <= maxima[0]
    benchmark.pedantic(
        lambda: expander_decomposition(
            g, 0.99, phi=0.05, seed=0, enforce_budget=False
        ),
        rounds=3,
        iterations=1,
    )
