"""E2 — Edge separators and the high-degree vertex (Thm 1.6, Lemma 2.3).

Claims under test: H-minor-free graphs admit balanced edge separators
of size O(sqrt(Delta * n)) (the envelope ratio stays bounded as n
grows), and consequently every cluster of an expander decomposition
contains a vertex of degree Omega(phi^2) |V_i| — while genuine
expanders (hypercubes) violate that condition.
"""

import pytest

from repro.analysis import Table
from repro.core.failure import degree_condition_holds
from repro.decomposition import expander_decomposition
from repro.generators import (
    delaunay_planar_graph,
    grid_graph,
    hypercube_graph,
    k_tree,
    triangulated_grid_graph,
)
from repro.spectral import balanced_edge_separator, separator_quality

from _util import record_table, reset_result


def test_e02_separator_envelope(benchmark):
    reset_result("E02.txt")
    table = Table(
        "E2: balanced edge separators, |cut| / sqrt(Delta n) envelope",
        ["family", "n", "Delta", "|cut|", "envelope_ratio"],
    )
    families = [
        ("grid", lambda n: grid_graph(int(n ** 0.5), int(n ** 0.5))),
        ("delaunay", lambda n: delaunay_planar_graph(n, seed=21)),
        ("tri-grid", lambda n: triangulated_grid_graph(int(n ** 0.5), int(n ** 0.5))),
        ("k-tree(3)", lambda n: k_tree(n, 3, seed=22)),
    ]
    for name, make in families:
        for n in (64, 144, 256, 400):
            g = make(n)
            cut_set, size = balanced_edge_separator(g, seed=0)
            ratio = separator_quality(g, cut_set)
            table.add_row(name, g.n, g.max_degree(), size, ratio)
            # Theorem 1.6 shape: the ratio is O(1), independent of n.
            assert ratio <= 4.0
    record_table("E02.txt", table)

    g = delaunay_planar_graph(256, seed=21)
    benchmark.pedantic(
        lambda: balanced_edge_separator(g, seed=0), rounds=3, iterations=1
    )


def test_e02_degree_condition_lemma_2_3(benchmark):
    table = Table(
        "E2b: Lemma 2.3 degree condition deg(v*) >= c phi^2 |E_i|",
        ["graph", "phi", "clusters", "min deg(v*)/(phi^2 |E_i|)", "holds"],
    )
    instances = [
        ("delaunay(200)", delaunay_planar_graph(200, seed=23), 0.05),
        ("k-tree(150)", k_tree(150, 3, seed=24), 0.05),
        ("hypercube(10)", hypercube_graph(10), 0.09),
    ]
    verdicts = {}
    for name, g, phi in instances:
        dec = expander_decomposition(
            g, 0.9, phi=phi, seed=0, enforce_budget=False
        )
        worst = float("inf")
        holds = True
        for cluster, cert in zip(dec.clusters, dec.certificates):
            sub = g.subgraph(cluster)
            if sub.m == 0:
                continue
            cluster_phi = max(phi, cert)
            worst = min(
                worst,
                sub.max_degree() / (cluster_phi ** 2 * sub.m),
            )
            holds = holds and degree_condition_holds(sub, cluster_phi)
        table.add_row(name, phi, dec.k, worst, holds)
        verdicts[name] = holds
    record_table("E02.txt", table)

    # Minor-free families satisfy the condition; the hypercube, once
    # phi approaches its true conductance 1/d, does not — it is the
    # witness that the framework's precondition is real.
    assert verdicts["delaunay(200)"]
    assert verdicts["k-tree(150)"]
    assert not verdicts["hypercube(10)"]

    g = hypercube_graph(7)
    benchmark.pedantic(
        lambda: degree_condition_holds(g, 0.3), rounds=3, iterations=1
    )
