"""A1 — Ablations of the library's design choices.

Three knobs DESIGN.md calls out, each isolated here:

1. *Transport*: Lemma 2.4 random-walk gathering vs the BFS-tree
   convergecast — walks trade rounds for O(log n) congestion.
2. *Boundary randomization* (``cut_slack``): the distributed MWM relies
   on randomized sweep prefixes so that edges stuck on cluster
   boundaries get re-optimized; slack 1.0 freezes the boundaries.
3. *Walk-length calibration*: the measured mixing-time formula vs the
   analytic Lemma 2.4 worst-case length — the analytic bound wastes
   orders of magnitude of rounds on real clusters.
"""

import pytest

from repro.analysis import Table
from repro.core.framework import partition_minor_free
from repro.generators import delaunay_planar_graph, random_integer_weights
from repro.matching import distributed_mwm, matching_weight, max_weight_matching
from repro.routing.gather import _calibrated_walk_steps, gather_topology
from repro.routing.walk_exchange import default_walk_steps

from _util import record_table, reset_result


def degree_solver(sub, leader, notes):
    return {v: sub.degree(v) for v in sub.vertices()}


def test_a01_transport_ablation(benchmark):
    reset_result("A01.txt")
    table = Table(
        "A1: transport ablation (framework on delaunay 150, phi=0.05)",
        ["transport", "rounds", "eff_rounds", "max_congestion", "max_bits"],
    )
    g = delaunay_planar_graph(150, seed=201)
    results = {}
    for transport in ("walk", "tree"):
        result = partition_minor_free(
            g, 0.9, phi=0.05, seed=202, solver=degree_solver,
            transport=transport, enforce_budget=False,
        )
        results[transport] = result.metrics
        table.add_row(
            transport, result.metrics.rounds, result.metrics.effective_rounds,
            result.metrics.max_edge_congestion, result.metrics.max_message_bits,
        )
        assert result.all_succeeded
    record_table("A01.txt", table)
    # The trade: walks use more rounds but stay low-congestion.
    assert results["walk"].rounds > results["tree"].rounds
    assert (
        results["walk"].max_edge_congestion
        <= results["tree"].max_edge_congestion
    )

    benchmark.pedantic(
        lambda: partition_minor_free(
            g, 0.9, phi=0.05, seed=202, solver=degree_solver,
            transport="tree", enforce_budget=False,
        ),
        rounds=2,
        iterations=1,
    )


def test_a01_cut_slack_ablation(benchmark):
    table = Table(
        "A1b: MWM boundary randomization (delaunay 90, W=200, phi=0.06, 4 iters)",
        ["cut_slack", "weight", "ratio"],
    )
    g = random_integer_weights(delaunay_planar_graph(90, seed=203), 200, seed=204)
    opt = matching_weight(g, max_weight_matching(g))
    ratios = {}
    for slack in (1.0, 1.5, 2.0):
        result = distributed_mwm(
            g, 0.9, iterations=4, phi=0.06, seed=205,
            cut_slack=slack, enforce_budget=False,
        )
        ratios[slack] = result.weight / opt
        table.add_row(slack, result.weight, result.weight / opt)
    record_table("A01.txt", table)
    # Randomized boundaries should never do worse than frozen ones
    # (frozen boundaries cannot re-optimize stuck edges at all).
    assert max(ratios[1.5], ratios[2.0]) >= ratios[1.0] - 1e-9

    benchmark.pedantic(
        lambda: distributed_mwm(
            g, 0.9, iterations=2, phi=0.06, seed=205, cut_slack=1.5,
            enforce_budget=False,
        ),
        rounds=2,
        iterations=1,
    )


def test_a01_walk_length_calibration(benchmark):
    table = Table(
        "A1c: calibrated vs analytic walk length",
        ["cluster_n", "phi", "calibrated_steps", "analytic_steps", "savings"],
    )
    for n, phi in ((40, 0.1), (80, 0.05), (150, 0.03)):
        g = delaunay_planar_graph(n, seed=206)
        leader = max(g.vertices(), key=g.degree)
        calibrated = _calibrated_walk_steps(
            g, phi, leader=leader, tokens=g.n + g.m
        )
        analytic = default_walk_steps(n, phi)
        table.add_row(n, phi, calibrated, analytic, analytic / calibrated)
        # Both deliver; the calibrated one is what the framework uses.
        result = gather_topology(g, phi=phi, seed=207, forward_steps=calibrated)
        assert result.success
    record_table("A01.txt", table)

    g = delaunay_planar_graph(80, seed=206)
    benchmark.pedantic(
        lambda: gather_topology(g, phi=0.05, seed=207), rounds=2, iterations=1
    )
