"""E11 — Hypercube tightness of the expander-decomposition trade-off.

Claim under test (Section 2, citing [4]): after removing any constant
fraction of a hypercube's edges, some remaining component has
conductance O(1/log n) — so phi = Omega(eps / log n) is the best
possible decomposition guarantee.  We measure the certified
conductances of decomposition clusters across dimensions and check the
1/d decay, contrasted with a minor-free family whose clusters stay
small (where phi is limited by cluster size, not by dimension).
"""

import math

import pytest

from repro.analysis import Table
from repro.decomposition import expander_decomposition
from repro.generators import hypercube_graph
from repro.spectral import conductance_lower_bound, spectral_gap

from _util import record_table, reset_result


def test_e11_conductance_decay(benchmark):
    reset_result("E11.txt")
    table = Table(
        "E11: hypercube Q_d, best big-cluster conductance vs 1/d",
        ["d", "n", "eps", "cut_frac", "big_clusters",
         "best_big_cluster_phi", "2/d reference"],
    )
    for d in (4, 5, 6, 7):
        g = hypercube_graph(d)
        epsilon = 0.25
        dec = expander_decomposition(
            g, epsilon, seed=0, enforce_budget=False
        )
        big = [c for c in dec.clusters if len(c) > 2 ** (d - 2)]
        best = 0.0
        for cluster in big:
            sub = g.subgraph(cluster)
            best = max(best, conductance_lower_bound(sub))
        table.add_row(
            d, g.n, epsilon, dec.cut_fraction(), len(big), best, 2.0 / d
        )
        # The shape: no big piece certifies substantially more than
        # Theta(1/d) conductance.
        if big:
            assert best <= 4.0 / d
    record_table("E11.txt", table)

    g = hypercube_graph(6)
    benchmark.pedantic(
        lambda: expander_decomposition(g, 0.25, seed=0, enforce_budget=False),
        rounds=2,
        iterations=1,
    )


def test_e11_whole_cube_gap_matches_theory(benchmark):
    """lambda_2 of Q_d's normalized Laplacian is exactly 2/d."""
    table = Table(
        "E11b: spectral gap of Q_d",
        ["d", "lambda_2", "2/d"],
    )
    for d in (3, 4, 5, 6):
        g = hypercube_graph(d)
        gap = spectral_gap(g)
        table.add_row(d, gap, 2.0 / d)
        assert gap == pytest.approx(2.0 / d, rel=1e-6)
    record_table("E11.txt", table)

    g = hypercube_graph(6)
    benchmark.pedantic(lambda: spectral_gap(g), rounds=3, iterations=1)
