"""E6 — (1 - epsilon)-approximate MWM on H-minor-free networks (Thm 1.1).

Claims under test: across weight scales W (the adversarial axis the
paper highlights — a few edges can carry most of the weight), the
iterated framework algorithm reaches ratio >= 1 - epsilon of the exact
weighted blossom optimum and dominates the greedy 1/2-approximation.
The iteration count is the poly(1/eps) knob.
"""

import pytest

from repro.analysis import Table
from repro.generators import (
    delaunay_planar_graph,
    k_tree,
    random_integer_weights,
)
from repro.matching import (
    distributed_mwm,
    greedy_weight_matching,
    matching_weight,
    max_weight_matching,
)

from _util import record_table, reset_result


def test_e06_weight_scale_sweep(benchmark):
    reset_result("E06.txt")
    table = Table(
        "E6: MWM ratio across weight scales W (eps = 0.25)",
        ["family", "W", "opt", "framework", "ratio", "greedy_ratio"],
    )
    epsilon = 0.25
    for family, base in [
        ("delaunay(70)", delaunay_planar_graph(70, seed=61)),
        ("k-tree(70)", k_tree(70, 3, seed=62)),
    ]:
        for w in (10, 100, 1000):
            g = random_integer_weights(base, w, seed=63 + w)
            opt = matching_weight(g, max_weight_matching(g))
            result = distributed_mwm(g, epsilon, iterations=3, seed=64)
            greedy = matching_weight(g, greedy_weight_matching(g))
            ratio = result.weight / opt
            table.add_row(family, w, opt, result.weight, ratio, greedy / opt)
            assert ratio >= 1 - epsilon
    record_table("E06.txt", table)

    g = random_integer_weights(delaunay_planar_graph(70, seed=61), 100, seed=65)
    benchmark.pedantic(
        lambda: distributed_mwm(g, 0.25, iterations=2, seed=64),
        rounds=2,
        iterations=1,
    )


def test_e06_iterations_converge(benchmark):
    """Weight is monotone in the iteration count (the scaling stand-in)."""
    table = Table(
        "E6b: iteration sweep with forced multi-cluster decomposition "
        "(delaunay 90, W=200, eps=0.3, phi=0.06)",
        ["iterations", "weight", "ratio"],
    )
    g = random_integer_weights(delaunay_planar_graph(90, seed=66), 200, seed=67)
    opt = matching_weight(g, max_weight_matching(g))
    weights = []
    for iterations in (1, 2, 4, 6):
        result = distributed_mwm(
            g, 0.9, iterations=iterations, phi=0.06, seed=68,
            enforce_budget=False,
        )
        weights.append(result.weight)
        table.add_row(iterations, result.weight, result.weight / opt)
    record_table("E06.txt", table)
    assert all(a <= b + 1e-9 for a, b in zip(weights, weights[1:]))
    assert weights[-1] >= 0.7 * opt

    benchmark.pedantic(
        lambda: distributed_mwm(g, 0.3, iterations=4, seed=68),
        rounds=2,
        iterations=1,
    )
