"""E5 — (1 - epsilon)-approximate MCM on planar networks (Theorem 3.2).

Claims under test: the star-elimination preprocessing (i) preserves the
maximum matching size exactly, (ii) makes the optimum Omega(n) (Lemma
3.1), and (iii) the framework pipeline achieves ratio >= 1 - epsilon.
"""

import pytest

from repro.analysis import Table
from repro.generators import (
    delaunay_planar_graph,
    random_planar_graph,
    star_graph,
)
from repro.graph import Graph
from repro.matching import (
    distributed_mcm_planar,
    eliminate_stars,
    max_cardinality_matching,
)

from _util import record_table, reset_result


def starry_planar(n: int, seed: int) -> Graph:
    """Planar graph with pendant stars attached — the adversarial case
    where M* is far from Omega(n) before preprocessing."""
    g = delaunay_planar_graph(n, seed=seed)
    nxt = n
    for v in range(0, n, 3):
        for _ in range(4):
            g.add_edge(v, nxt)
            nxt += 1
    return g


def test_e05_preprocessing_lemma_3_1(benchmark):
    reset_result("E05.txt")
    table = Table(
        "E5: star elimination (MCM preserved, optimum becomes Omega(n))",
        ["instance", "n", "n_reduced", "MCM", "MCM_reduced",
         "MCM/n before", "MCM/n after"],
    )
    instances = [
        ("delaunay(90)", delaunay_planar_graph(90, seed=51)),
        ("sparse planar", random_planar_graph(90, edge_fraction=0.5, seed=52)),
        ("starry planar", starry_planar(60, seed=53)),
        ("pure star", star_graph(30)),
    ]
    for name, g in instances:
        reduced, _removed = eliminate_stars(g)
        before = len(max_cardinality_matching(g))
        after = len(max_cardinality_matching(reduced))
        assert before == after  # elimination preserves M*
        table.add_row(
            name, g.n, reduced.n, before, after,
            before / g.n, after / max(1, reduced.n),
        )
        if reduced.n:
            # Lemma 3.1 linearity (constant 1/8 is comfortable).
            assert after >= reduced.n / 8
    record_table("E05.txt", table)

    g = starry_planar(60, seed=53)
    benchmark.pedantic(lambda: eliminate_stars(g), rounds=3, iterations=1)


def test_e05_theorem_3_2_ratio(benchmark):
    table = Table(
        "E5b: distributed planar MCM ratios",
        ["instance", "eps", "opt", "distributed", "ratio", "clusters"],
    )
    instances = [
        ("delaunay(100)", delaunay_planar_graph(100, seed=54)),
        ("sparse planar(120)", random_planar_graph(120, edge_fraction=0.6, seed=55)),
        ("starry planar(60)", starry_planar(60, seed=56)),
    ]
    for name, g in instances:
        opt = len(max_cardinality_matching(g))
        for epsilon in (0.2, 0.4):
            result, fw = distributed_mcm_planar(g, epsilon, seed=57)
            ratio = result.size / opt
            table.add_row(
                name, epsilon, opt, result.size, ratio,
                len(fw.clusters) if fw else 0,
            )
            assert ratio >= 1 - epsilon
    # A forced multi-cluster run (explicit phi): the interesting regime
    # where inter-cluster optimum edges are actually lost.
    g = delaunay_planar_graph(100, seed=54)
    opt = len(max_cardinality_matching(g))
    result, fw = distributed_mcm_planar(
        g, 0.9, linearity_constant=1.0, phi=0.06, seed=57
    )
    table.add_row(
        "delaunay(100), phi=0.06", 0.9, opt, result.size,
        result.size / opt, len(fw.clusters),
    )
    assert result.size >= 0.7 * opt
    record_table("E05.txt", table)

    g = delaunay_planar_graph(100, seed=54)
    benchmark.pedantic(
        lambda: distributed_mcm_planar(g, 0.3, seed=57), rounds=2, iterations=1
    )
