"""E11 — fault tolerance: graded verdicts under rising message loss.

Claim under test: with the deterministic fault layer active, every
experiment reports a *judged* outcome — correct / degraded(ratio) /
failed — instead of silently wrong numbers.  The sweep runs an
E01-style decomposition pipeline (the Theorem 2.6 framework) and one
independent-set algorithm (Luby's MIS, run genuinely on the CONGEST
simulator) under drop rates {0, 0.01, 0.05, 0.2} and validates each
output against the original graph.

The companion claim is monotone sanity: at drop rate 0 both algorithms
are verifiably correct, and verdicts never improve as the channel gets
worse.
"""

import pytest

from repro.congest import FaultPlan, use_faults
from repro.generators import delaunay_planar_graph
from repro.independent_set.greedy import luby_mis
from repro.resilience import validate_independent_set

from _util import run_recorded_suite

_RANK = {"correct": 0, "degraded": 1, "failed": 2}


def test_e11_fault_tolerance_sweep(benchmark):
    """The E11 grid (drop rate x algorithm), executed as runner cells."""
    run = run_recorded_suite("E11", "E11.txt")
    assert len(run.results) == 8
    assert not run.quarantined  # graded failures are rows, not aborts

    verdicts = {}
    for cell in run.results:
        (algorithm, drop, n, rounds, messages, dropped, label), = cell.rows
        verdict = cell.extra["verdict"]
        assert label.startswith(verdict["status"])
        verdicts[(algorithm, drop)] = verdict
        if drop == 0.0:
            # A fault-free channel must validate as fully correct.
            assert verdict["status"] == "correct"
            assert dropped == 0
        elif cell.metrics is None:
            # The run broke before metrics existed: graded as failed.
            assert verdict["status"] == "failed"

    # Verdicts never get better as the drop rate rises.
    for algorithm in ("maxis", "framework"):
        ranks = [
            _RANK[verdicts[(algorithm, drop)]["status"]]
            for drop in (0.0, 0.01, 0.05, 0.2)
        ]
        assert ranks == sorted(ranks)

    g = delaunay_planar_graph(48, seed=41)
    plan = FaultPlan(seed=1104, drop=0.05)

    def faulted_mis():
        with use_faults(plan):
            mis, result = luby_mis(g, seed=5)
        return validate_independent_set(g, mis)

    benchmark.pedantic(faulted_mis, rounds=3, iterations=1)


def test_e11_verdict_ratio_is_measured_not_asserted():
    """Degraded verdicts expose the measured approximation ratio."""
    g = delaunay_planar_graph(48, seed=41)
    with use_faults(FaultPlan(seed=2, drop=0.15)):
        mis, _result = luby_mis(g, seed=9)
    verdict = validate_independent_set(g, mis)
    if verdict.status == "degraded":
        assert 0.0 < verdict.ratio < 1.0
    else:
        # Independence broke or survived outright; both are graded.
        assert verdict.status in ("correct", "failed")
        assert verdict.ratio in (0.0, 1.0)
