"""E14 (extension) — distributed triangle listing.

The first application of distributed expander decompositions (CPSZ,
paper §1.4), replayed in the sparse-network setting: intra-cluster
triangles found by cluster leaders, cross-cluster triangles by
neighbor-list streaming across the few cut edges.  Claim under test:
the listing is *exact* on every family, and the cut phase stays cheap
(rounds bounded by the max degree, messages by the cut volume).
"""

import pytest

from repro.analysis import Table
from repro.generators import (
    apex_graph,
    delaunay_planar_graph,
    k_tree,
    triangulated_grid_graph,
)
from repro.subgraphs import distributed_triangle_listing, list_triangles

from _util import record_table, reset_result


def test_e14_exactness_and_cost(benchmark):
    reset_result("E14.txt")
    table = Table(
        "E14: distributed triangle listing (phi = 0.05)",
        ["family", "n", "triangles", "exact", "clusters", "cut_edges",
         "cut_rounds", "cut_messages"],
    )
    families = [
        ("tri-grid", triangulated_grid_graph(10, 10)),
        ("delaunay", delaunay_planar_graph(120, seed=141)),
        ("k-tree(3)", k_tree(100, 3, seed=142)),
        ("apex", apex_graph(80, apex_degree_fraction=0.3, seed=143)),
    ]
    for name, g in families:
        found, framework, cut_metrics = distributed_triangle_listing(
            g, epsilon=0.9, phi=0.05, seed=144
        )
        expected = list_triangles(g)
        table.add_row(
            name, g.n, len(expected), found == expected,
            len(framework.clusters),
            len(framework.decomposition.cut_edges),
            cut_metrics.rounds, cut_metrics.total_messages,
        )
        assert found == expected
        # Cut-phase cost stays degree-bounded.
        assert cut_metrics.rounds <= g.max_degree()
    record_table("E14.txt", table)

    g = delaunay_planar_graph(120, seed=141)
    benchmark.pedantic(
        lambda: distributed_triangle_listing(g, epsilon=0.9, phi=0.05, seed=144),
        rounds=2,
        iterations=1,
    )
