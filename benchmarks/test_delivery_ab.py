"""A/B benchmark: batched send-plan delivery vs scalar outbox delivery.

Kernels are engaged on both sides; the only difference is how each
round's sends reach the engine — as a columnar :class:`SendPlan`
(accounted vectorized, inboxes materialized lazily) or through the
classic per-context outboxes drained message-by-message.  The measured
cells are deliberately message-heavy (dense G(n, p), long protocols):
batching is a *delivery* optimization, so its win scales with messages
per round, not with n.  Sparse short-lived cells sit nearer parity —
per-run fixed costs (lazy RNG construction, scheduling) are shared by
both modes; the honest sparse numbers live in ``docs/kernels.md``.

Runs are interleaved A/B pairs (one batched, one scalar, alternating)
so drift in machine load biases neither side, and every pair's outputs
and metric summaries are asserted identical — the table measures two
executions of the *same* simulation, by construction.

Usage: ``PYTHONPATH=src python -m pytest benchmarks/test_delivery_ab.py -q``
writes ``benchmarks/results/delivery_ab.txt``.
"""

from __future__ import annotations

import time

from _util import record_table, reset_result
from repro.analysis import Table
from repro.congest.algorithm import (
    set_batch_delivery_enabled,
    set_kernels_enabled,
)
from repro.congest.network import CongestSimulator
from repro.decomposition.mpx import MPXClustering
from repro.generators import gnp_random_graph
from repro.independent_set.greedy import LubyMIS
from repro.matching.distributed import ProposalMatching
from repro.rng import HAVE_NUMPY

import pytest

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="delivery A/B requires the kernelized path"
)

PAIRS = 8
SEED = 7

CELLS = {
    "luby": (
        lambda: gnp_random_graph(3000, 0.02, seed=SEED),
        lambda v: LubyMIS(40),
        100,
    ),
    "matching": (
        lambda: gnp_random_graph(3000, 0.02, seed=SEED),
        lambda v: ProposalMatching(60),
        140,
    ),
    "mpx": (
        lambda: gnp_random_graph(3000, 0.01, seed=SEED),
        lambda v: MPXClustering(0.3, 54.0, 60),
        62,
    ),
}


def _run(graph, factory, rounds, batched):
    set_kernels_enabled(True)
    set_batch_delivery_enabled(batched)
    try:
        sim = CongestSimulator(graph, factory, seed=SEED)
        start = time.perf_counter()
        result = sim.run(max_rounds=rounds)
        elapsed = time.perf_counter() - start
        kernel = sim._engine._kernel
        assert kernel is not None, "cell must actually kernelize"
        assert kernel._batched == batched
    finally:
        set_kernels_enabled(True)
        set_batch_delivery_enabled(True)
    return elapsed, (result.outputs, result.metrics.summary())


def test_batched_delivery_ab():
    table = Table(
        "batched vs scalar delivery "
        f"({PAIRS} interleaved pairs, best-of, seed {SEED})",
        ["cell", "n", "messages", "batched_ms", "scalar_ms", "speedup"],
    )
    for name, (gen, factory, rounds) in CELLS.items():
        graph = gen()
        # One warmup per side keeps allocator/import noise out of the
        # timed pairs.
        _run(graph, factory, rounds, True)
        _run(graph, factory, rounds, False)
        batched_times, scalar_times = [], []
        for _ in range(PAIRS):
            elapsed_on, obs_on = _run(graph, factory, rounds, True)
            elapsed_off, obs_off = _run(graph, factory, rounds, False)
            assert obs_on == obs_off, "delivery modes diverged"
            batched_times.append(elapsed_on)
            scalar_times.append(elapsed_off)
        best_on, best_off = min(batched_times), min(scalar_times)
        table.add_row(
            name,
            graph.n,
            obs_on[1]["total_messages"],
            f"{best_on * 1000:.1f}",
            f"{best_off * 1000:.1f}",
            f"{best_off / best_on:.2f}x",
        )
    reset_result("delivery_ab.txt")
    record_table("delivery_ab.txt", table)
