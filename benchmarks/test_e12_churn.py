"""E12 — crash-recovery churn: graded verdicts under vertex rejoins.

Claim under test: the crash-recovery model (fail-stop crashes followed
by deterministic rejoins, restoring from local snapshots) produces
*judged* outcomes for unhardened algorithms — and recovery is visible
in the grades.  The sweep runs Luby's MIS and the Theorem 2.6 framework
under three churn modes: ``none`` (fault-free baseline), ``crash``
(two vertices fail-stop permanently), and ``churn`` (the same crashes,
both vertices rejoining later from snapshots).

The companion claim is that churn accounting is exact: crashed and
rejoined counts in the merged metrics match the fault plan's schedule
as far as it actually fired, deterministically.
"""

from repro.congest import CongestSimulator, FaultPlan
from repro.congest.algorithm import VertexAlgorithm
from repro.generators import delaunay_planar_graph
from repro.independent_set.greedy import luby_mis
from repro.resilience import validate_independent_set

from _util import run_recorded_suite

_RANK = {"correct": 0, "degraded": 1, "failed": 2}


class _Flood(VertexAlgorithm):
    """Min-ID flooding; module-level so local snapshots can pickle it."""

    def __init__(self, vertex):
        self.vertex = vertex
        self.best = vertex
        self.quiet = 0

    def initialize(self, ctx):
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        improved = False
        for payloads in inbox.values():
            for payload in payloads:
                if isinstance(payload, int) and payload < self.best:
                    self.best = payload
                    improved = True
        if improved:
            self.quiet = 0
            ctx.broadcast(self.best)
        else:
            self.quiet += 1
            if self.quiet >= 3:
                ctx.halt(self.best)


def test_e12_churn_sweep(benchmark):
    """The E12 grid (churn mode x algorithm), executed as runner cells."""
    run = run_recorded_suite("E12", "E12.txt")
    assert len(run.results) == 6
    assert not run.quarantined  # graded failures are rows, not aborts

    verdicts = {}
    for cell in run.results:
        (algorithm, churn, n, rounds, messages,
         crashed, rejoined, label), = cell.rows
        verdict = cell.extra["verdict"]
        assert label.startswith(verdict["status"])
        verdicts[(algorithm, churn)] = verdict
        if churn == "none":
            # The fault-free baseline must validate as fully correct.
            assert verdict["status"] == "correct"
            assert crashed == 0 and rejoined == 0
        else:
            # A vertex can only rejoin after its crash actually fired.
            assert rejoined <= crashed <= 2

    # Crashes never help: the crash verdict is no better than baseline.
    for algorithm in ("maxis", "framework"):
        assert (
            _RANK[verdicts[(algorithm, "crash")]["status"]]
            >= _RANK[verdicts[(algorithm, "none")]["status"]]
        )
        # And rejoining never makes things worse than staying crashed.
        assert (
            _RANK[verdicts[(algorithm, "churn")]["status"]]
            <= _RANK[verdicts[(algorithm, "crash")]["status"]]
        )

    g = delaunay_planar_graph(48, seed=41)
    plan = FaultPlan(
        seed=1204,
        crashes=((3, 4), (17, 6)),
        rejoins=((3, 9), (17, 12)),
        checkpoint_interval=3,
    )

    def churned_mis():
        from repro.congest import use_faults

        with use_faults(plan):
            mis, result = luby_mis(g, seed=5)
        return validate_independent_set(g, mis)

    benchmark.pedantic(churned_mis, rounds=3, iterations=1)


def test_e12_churn_accounting_is_deterministic():
    """Crash/rejoin counters replay identically across repeat runs."""
    g = delaunay_planar_graph(48, seed=41)
    plan = FaultPlan(
        seed=7,
        crashes=((3, 2), (17, 3)),
        rejoins=((3, 6), (17, 8)),
        checkpoint_interval=2,
    )

    def flood_run():
        sim = CongestSimulator(g, _Flood, seed=5, faults=plan)
        result = sim.run(200)
        return result.metrics.fault_summary()

    first = flood_run()
    second = flood_run()
    assert first == second
    assert first["vertices_crashed"] == 2
    assert first["vertices_rejoined"] == 2
