"""E13 (extension) — (1 + epsilon)-approximate minimum dominating set.

The paper positions its framework as the way to move the LOCAL-model
(1 + epsilon) MDS line (Czygrinow et al.) to CONGEST.  Claim under
test: on bounded-degree minor-free networks, the union of per-cluster
optimal dominating sets is within (1 + epsilon) of optimum, vs the
greedy ln-n baseline.
"""

import pytest

from repro.analysis import Table
from repro.dominating_set import (
    distributed_mds,
    exact_mds,
    greedy_mds,
    is_dominating_set,
)
from repro.generators import (
    delaunay_planar_graph,
    grid_graph,
    toroidal_grid_graph,
)

from _util import record_table, reset_result


def test_e13_ratio_on_bounded_degree(benchmark):
    reset_result("E13.txt")
    table = Table(
        "E13: dominating set ratios (bounded-degree minor-free)",
        ["instance", "eps", "opt", "framework", "ratio", "greedy_ratio"],
    )
    instances = [
        ("grid(8x8)", grid_graph(8, 8)),
        ("torus(7x7)", toroidal_grid_graph(7, 7)),
        ("delaunay(60)", delaunay_planar_graph(60, seed=131)),
    ]
    for name, g in instances:
        opt = len(exact_mds(g))
        greedy = len(greedy_mds(g))
        for epsilon in (0.2, 0.4):
            result = distributed_mds(g, epsilon, seed=132)
            assert is_dominating_set(g, result.dominating_set)
            ratio = result.size / opt
            table.add_row(
                name, epsilon, opt, result.size, ratio, greedy / opt
            )
            assert ratio <= 1 + epsilon
    record_table("E13.txt", table)

    g = grid_graph(8, 8)
    benchmark.pedantic(
        lambda: distributed_mds(g, 0.3, seed=132), rounds=2, iterations=1
    )


def test_e13_multi_cluster_regime(benchmark):
    """Forced multi-cluster run: the regime where cut edges cost."""
    table = Table(
        "E13b: forced multi-cluster MDS (delaunay 100, phi=0.06)",
        ["clusters", "best_known", "framework", "ratio"],
    )
    from repro.core.framework import partition_minor_free
    from repro.dominating_set.exact import solve_mds

    g = delaunay_planar_graph(100, seed=133)

    def solver(sub, leader, notes):
        chosen = solve_mds(sub)
        return {v: (1 if v in chosen else 0) for v in sub.vertices()}

    framework = partition_minor_free(
        g, 0.9, phi=0.06, seed=134, solver=solver, enforce_budget=False
    )
    dominating = {v for v, take in framework.answers.items() if take == 1}
    assert is_dominating_set(g, dominating)
    # Exact MDS at n=100 is beyond the solver's budget; compare against
    # the best-known centralized solution instead.
    best_known = len(solve_mds(g, node_budget=400_000))
    table.add_row(
        len(framework.clusters), best_known, len(dominating),
        len(dominating) / best_known,
    )
    record_table("E13.txt", table)
    assert len(dominating) <= 2.0 * best_known  # loose sanity, hard regime

    benchmark.pedantic(lambda: solve_mds(g), rounds=2, iterations=1)
