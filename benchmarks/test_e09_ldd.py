"""E9 — Low-diameter decomposition with D = O(1/epsilon) (Theorem 1.5).

Claims under test: the Theorem 1.5 pipeline meets the epsilon edge
budget with cluster diameter O(1/epsilon) — improving the generic ball
carving's O(log m / epsilon) — and the cycle instance witnesses that
D = Theta(1/epsilon) is optimal.
"""

import pytest

from repro.analysis import Table
from repro.decomposition import (
    ball_carving_ldd,
    chop_ldd,
    mpx_ldd,
    theorem_1_5_ldd,
    verify_ldd,
)
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    k_tree,
)

from _util import record_table, reset_result


def test_e09_epsilon_sweep(benchmark):
    reset_result("E09.txt")
    table = Table(
        "E9: LDD diameter x epsilon (cut budget always <= eps)",
        ["graph", "eps", "algorithm", "clusters", "cut_frac",
         "max_diam", "diam*eps"],
    )
    instances = [
        ("cycle(200)", cycle_graph(200)),
        ("grid(14x14)", grid_graph(14, 14)),
        ("delaunay(150)", delaunay_planar_graph(150, seed=91)),
        ("k-tree(120)", k_tree(120, 3, seed=92)),
    ]
    for name, g in instances:
        for epsilon in (0.15, 0.3, 0.5):
            for algo_name, run in (
                ("ball", lambda: ball_carving_ldd(g, epsilon, seed=93)),
                ("thm1.5", lambda: theorem_1_5_ldd(g, epsilon, seed=93)),
                ("mpx", lambda: mpx_ldd(g, epsilon, seed=93)[0]),
            ):
                ldd = run()
                diam = float(ldd.max_diameter())
                table.add_row(
                    name, epsilon, algo_name, len(ldd.clusters),
                    ldd.cut_fraction(), int(diam), diam * epsilon,
                )
                if algo_name == "mpx":
                    # MPX's budget is in expectation only; just record.
                    continue
                report = verify_ldd(ldd)
                assert report["cut_fraction"] <= epsilon
                if algo_name == "thm1.5":
                    # D = O(1/eps): the normalized product is bounded.
                    assert diam * epsilon <= 30
    record_table("E09.txt", table)

    g = delaunay_planar_graph(150, seed=91)
    benchmark.pedantic(
        lambda: theorem_1_5_ldd(g, 0.3, seed=93), rounds=2, iterations=1
    )


def test_e09_cycle_optimality(benchmark):
    """On the cycle, fewer than eps*n cut edges force arcs of length
    >= 1/eps: D = Omega(1/eps) is unavoidable (the paper's remark)."""
    table = Table(
        "E9b: cycle witnesses D = Theta(1/eps)",
        ["eps", "cut_frac", "max_diam", "lower_bound 1/(2 eps)"],
    )
    g = cycle_graph(240)
    for epsilon in (0.1, 0.2, 0.4):
        ldd = theorem_1_5_ldd(g, epsilon, seed=94)
        diam = ldd.max_diameter()
        lower = 1 / (2 * epsilon)
        table.add_row(epsilon, ldd.cut_fraction(), diam, lower)
        assert ldd.cut_fraction() <= epsilon
        # Any valid LDD must have some cluster of diameter >= ~1/eps - 1.
        if ldd.cut_fraction() > 0:
            assert diam >= lower - 1
    record_table("E09.txt", table)

    benchmark.pedantic(
        lambda: theorem_1_5_ldd(g, 0.2, seed=94), rounds=2, iterations=1
    )
