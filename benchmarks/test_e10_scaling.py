"""E10 — Round/congestion scaling of the framework across n.

Claim under test: for fixed epsilon, the framework's measured CONGEST
cost (rounds, effective rounds, message bits) grows polylogarithmically
times poly(1/phi) rather than linearly with n for the message *sizes*,
and every message stays within the O(log n)-bit budget.  Rounds are
dominated by the random-walk phase, whose length tracks the measured
cluster mixing times — the phi^{-O(1)} polylog(n) shape of Theorem 2.6.
"""

import math
import os

import pytest

from repro.analysis import Table
from repro.congest import TraceSession
from repro.congest.message import MessageBudget
from repro.core.framework import partition_minor_free, run_framework
from repro.generators import delaunay_planar_graph

from _util import RESULTS_DIR, record_table, run_recorded_suite


def degree_solver(sub, leader, notes):
    return {v: sub.degree(v) for v in sub.vertices()}


def test_e10_scaling_sweep(benchmark):
    """The E10 grid (n x seed), executed as runner cells.

    The table is assembled from per-cell result objects in grid order;
    the budget invariant is asserted on every cell, the asymptotic
    shape claims on the seed = 102 series (the historical sweep).
    """
    run = run_recorded_suite("E10", "E10.txt")
    assert len(run.results) == 15
    series = []
    for cell in run.results:
        (n, seed, clusters, rounds, eff_rounds, messages,
         max_bits, budget_bits, congestion), = cell.rows
        # The model invariant: never exceed the O(log n) budget.
        assert max_bits <= budget_bits
        if seed == 102:
            series.append((n, rounds, max_bits))
    series.sort()

    # Shape: message size grows like log n, not n.
    first_n, first_rounds, first_bits = series[0]
    last_n, last_rounds, last_bits = series[-1]
    assert last_bits <= first_bits * (
        2 * math.log2(last_n) / math.log2(first_n)
    )
    # Rounds grow far slower than the n ratio squared (walks are
    # phi^{-O(1)} polylog, and phi is fixed across the sweep).
    assert last_rounds <= first_rounds * (last_n / first_n) ** 2

    g = delaunay_planar_graph(128, seed=101)
    benchmark.pedantic(
        lambda: run_framework(g, 0.9, solver=degree_solver, phi=0.05, seed=102),
        rounds=2,
        iterations=1,
    )


def test_e10_smallest_smoke(benchmark):
    """CI smoke slice: the E10 workload at its smallest n, traced.

    Runs the exact pipeline of the scaling sweep on the n = 64 instance
    only (selected in CI with ``-k smallest``) and writes the structured
    per-round trace to ``benchmarks/results/E10_trace_smallest.jsonl``
    for artifact upload, so every CI run leaves an inspectable
    congestion-over-time series.
    """
    g = delaunay_planar_graph(64, seed=101)
    with TraceSession() as session:
        result = run_framework(
            g, 0.9, solver=degree_solver, phi=0.05, seed=102
        )
    metrics = result.metrics
    assert metrics.max_message_bits <= MessageBudget(g.n).bits
    assert metrics.rounds > 0 and metrics.total_messages > 0
    # The trace covers every simulated round of every internal phase.
    assert session.total_rounds() >= metrics.rounds
    os.makedirs(RESULTS_DIR, exist_ok=True)
    session.write_jsonl(os.path.join(RESULTS_DIR, "E10_trace_smallest.jsonl"))

    benchmark.pedantic(
        lambda: run_framework(g, 0.9, solver=degree_solver, phi=0.05, seed=102),
        rounds=1,
        iterations=1,
    )


def test_e10_epsilon_cost_tradeoff(benchmark):
    """Smaller epsilon => smaller phi => longer walks: the poly(1/eps)
    factor of Theorem 2.6, made visible."""
    table = Table(
        "E10b: rounds vs phi (delaunay 128)",
        ["phi", "clusters", "rounds", "eff_rounds"],
    )
    g = delaunay_planar_graph(128, seed=103)
    rounds = []
    for phi in (0.1, 0.05, 0.02):
        result = partition_minor_free(
            g, 0.9, solver=degree_solver, phi=phi, seed=104,
            enforce_budget=False,
        )
        table.add_row(
            phi, len(result.clusters), result.metrics.rounds,
            result.metrics.effective_rounds,
        )
        rounds.append(result.metrics.rounds)
    record_table("E10.txt", table)
    # Coarser clusters (smaller phi) mix slower: rounds increase.
    assert rounds[-1] >= rounds[0]

    benchmark.pedantic(
        lambda: run_framework(g, 0.9, solver=degree_solver, phi=0.05, seed=104),
        rounds=2,
        iterations=1,
    )
