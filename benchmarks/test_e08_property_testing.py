"""E8 — Distributed property testing (Theorem 1.4).

Claims under test: one-sided completeness (graphs in the property are
always accepted) and soundness on epsilon-far instances (some vertex
rejects), for four minor-closed union-closed properties.
"""

import pytest

from repro.analysis import Table
from repro.generators import (
    complete_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    maximal_outerplanar_graph,
    random_tree,
    series_parallel_graph,
)
from repro.graph import Graph
from repro.property_testing import (
    FOREST,
    OUTERPLANAR,
    PLANARITY,
    SERIES_PARALLEL,
    distributed_property_test,
)

from _util import record_table, reset_result


def disjoint_copies(pattern: Graph, copies: int) -> Graph:
    g = Graph()
    offset = 0
    for _ in range(copies):
        for v in pattern.vertices():
            g.add_vertex(v + offset)
        for u, v in pattern.edges():
            g.add_edge(u + offset, v + offset)
        offset += pattern.n
    return g


CASES = [
    # (property, in-instance, far-instance, epsilon)
    (PLANARITY, lambda: delaunay_planar_graph(120, seed=81),
     lambda: disjoint_copies(complete_graph(6), 10), 0.05),
    (FOREST, lambda: random_tree(100, seed=82),
     lambda: disjoint_copies(complete_graph(3), 20), 0.2),
    (SERIES_PARALLEL, lambda: series_parallel_graph(90, seed=83),
     lambda: disjoint_copies(complete_graph(4), 15), 0.1),
    (OUTERPLANAR, lambda: maximal_outerplanar_graph(80, seed=84),
     lambda: disjoint_copies(complete_graph(4), 15), 0.1),
]


def test_e08_completeness_and_soundness(benchmark):
    reset_result("E08.txt")
    table = Table(
        "E8: property tester verdicts (one-sided error)",
        ["property", "instance", "n", "epsilon", "accepted", "rejecters"],
    )
    for prop, make_in, make_far, epsilon in CASES:
        g_in = make_in()
        result_in = distributed_property_test(g_in, prop, epsilon, seed=85)
        table.add_row(
            prop.name, "member", g_in.n, epsilon, result_in.accepted, 0
        )
        assert result_in.accepted  # completeness, probability one

        g_far = make_far()
        result_far = distributed_property_test(g_far, prop, epsilon, seed=86)
        rejecters = sum(1 for ok in result_far.verdicts.values() if not ok)
        table.add_row(
            prop.name, "eps-far", g_far.n, epsilon,
            result_far.accepted, rejecters,
        )
        assert not result_far.accepted  # soundness
        assert rejecters >= 1
    record_table("E08.txt", table)

    g = delaunay_planar_graph(120, seed=81)
    benchmark.pedantic(
        lambda: distributed_property_test(g, PLANARITY, 0.1, seed=85),
        rounds=2,
        iterations=1,
    )


def test_e08_mixed_instance_localizes_rejection(benchmark):
    """Planar bulk + K6 islands: only the islands need reject."""
    table = Table(
        "E8b: localization of rejection (planar bulk + K6 islands)",
        ["islands", "accepted", "rejecters", "island_rejecters"],
    )
    base = delaunay_planar_graph(100, seed=87)
    for islands in (2, 6):
        g = disjoint_copies(complete_graph(6), islands)
        for v in base.vertices():
            g.add_vertex(v + 10_000)
        for u, v in base.edges():
            g.add_edge(u + 10_000, v + 10_000)
        result = distributed_property_test(g, PLANARITY, 0.03, seed=88)
        rejecters = {v for v, ok in result.verdicts.items() if not ok}
        island_rejecters = sum(1 for v in rejecters if v < 10_000)
        table.add_row(
            islands, result.accepted, len(rejecters), island_rejecters
        )
        assert not result.accepted
        assert island_rejecters >= 1
    record_table("E08.txt", table)

    benchmark.pedantic(
        lambda: distributed_property_test(
            disjoint_copies(complete_graph(6), 6), PLANARITY, 0.03, seed=88
        ),
        rounds=2,
        iterations=1,
    )
