"""E12 — The LOCAL-CONGEST gap, made concrete.

The LOCAL-model recipe the paper starts from (gather each cluster's
topology "in one shot") needs messages of Theta(m log n) bits; CONGEST
allows O(log n).  This experiment measures the largest message the
framework actually sends, the O(log n) budget, and the message size the
LOCAL-style gather would have needed — and verifies the simulator
*rejects* the LOCAL-style message outright.
"""

import pytest

from repro.analysis import Table
from repro.congest.message import MessageBudget, message_bits
from repro.core.framework import run_framework
from repro.errors import MessageTooLargeError
from repro.generators import delaunay_planar_graph

from _util import record_table, reset_result


def degree_solver(sub, leader, notes):
    return {v: sub.degree(v) for v in sub.vertices()}


def local_style_payload(graph) -> tuple:
    """The whole topology as a single message (the LOCAL-model move)."""
    return tuple((u, v) for u, v in graph.edges())


def test_e12_message_size_gap(benchmark):
    reset_result("E12.txt")
    table = Table(
        "E12: largest message, framework vs LOCAL-style gather",
        ["n", "m", "budget_bits", "framework_max_bits",
         "local_payload_bits", "local/budget"],
    )
    for n in (64, 128, 256):
        g = delaunay_planar_graph(n, seed=121)
        result = run_framework(
            g, 0.9, solver=degree_solver, phi=0.06, seed=122
        )
        budget = MessageBudget(g.n)
        local_bits = message_bits(local_style_payload(g))
        table.add_row(
            n, g.m, budget.bits, result.metrics.max_message_bits,
            local_bits, local_bits / budget.bits,
        )
        # Framework fits; the LOCAL-style single message does not.
        assert result.metrics.max_message_bits <= budget.bits
        assert local_bits > budget.bits
        with pytest.raises(MessageTooLargeError):
            budget.check(local_style_payload(g))
    record_table("E12.txt", table)

    g = delaunay_planar_graph(128, seed=121)
    benchmark.pedantic(
        lambda: message_bits(local_style_payload(g)), rounds=3, iterations=1
    )


def test_e12_gap_grows_linearly(benchmark):
    """The LOCAL/CONGEST size ratio grows like m / words: linear in n."""
    table = Table(
        "E12b: LOCAL/CONGEST message-size ratio vs n",
        ["n", "ratio"],
    )
    ratios = []
    for n in (64, 256, 1024):
        g = delaunay_planar_graph(n, seed=123)
        ratio = message_bits(local_style_payload(g)) / MessageBudget(g.n).bits
        table.add_row(n, ratio)
        ratios.append(ratio)
    record_table("E12.txt", table)
    assert ratios[-1] > 4 * ratios[0]

    benchmark.pedantic(
        lambda: delaunay_planar_graph(256, seed=123), rounds=3, iterations=1
    )
