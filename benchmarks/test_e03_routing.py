"""E3 — Random-walk information gathering (Lemma 2.4).

Claims under test: every vertex's messages reach the high-degree
leader; per-round per-edge congestion stays O(log n); and the reverse
phase returns a distinct answer to every vertex.  The BFS-tree
exchange is the comparison point: fewer raw rounds, but congestion at
the leader's edges grows with the cluster size instead of log n.
"""

import math

import pytest

from repro.analysis import Table
from repro.decomposition import expander_decomposition
from repro.generators import delaunay_planar_graph, k_tree
from repro.routing import gather_topology

from _util import record_table, reset_result


def test_e03_walk_vs_tree_transport(benchmark):
    reset_result("E03.txt")
    table = Table(
        "E3: gathering G[V_i] to the leader, walk (Lemma 2.4) vs tree",
        ["cluster", "n_i", "m_i", "transport", "rounds", "eff_rounds",
         "max_congestion", "max_bits", "success"],
    )
    g = delaunay_planar_graph(200, seed=31)
    dec = expander_decomposition(g, 0.9, phi=0.04, seed=0, enforce_budget=False)
    clusters = sorted(dec.clusters, key=len, reverse=True)[:3]
    congestion_log_bound = 12 * math.log2(g.n)

    for i, cluster in enumerate(clusters):
        sub = g.subgraph(cluster)
        for transport in ("walk", "tree"):
            result = gather_topology(
                sub,
                phi=max(dec.phi, dec.certificates[dec.clusters.index(cluster)]),
                seed=7,
                network_n=g.n,
                transport=transport,
            )
            table.add_row(
                i, sub.n, sub.m, transport,
                result.metrics.rounds, result.metrics.effective_rounds,
                result.metrics.max_edge_congestion,
                result.metrics.max_message_bits,
                result.success,
            )
            assert result.success
            assert result.topology_complete(sub)
            if transport == "walk":
                # Lemma 2.4's congestion claim.
                assert result.metrics.max_edge_congestion <= congestion_log_bound
    record_table("E03.txt", table)

    sub = g.subgraph(clusters[0])
    benchmark.pedantic(
        lambda: gather_topology(sub, phi=0.05, seed=7, network_n=g.n),
        rounds=2,
        iterations=1,
    )


def test_e03_delivery_rate_vs_walk_length(benchmark):
    """Shorter walks fail detectably; the calibrated length succeeds."""
    from repro.routing import walk_exchange

    table = Table(
        "E3b: delivery vs forward walk length (k-tree cluster, n=80)",
        ["forward_steps", "delivered", "undelivered", "success"],
    )
    g = k_tree(80, 3, seed=32)
    leader = max(g.vertices(), key=g.degree)
    requests = {v: [(v, 1)] for v in g.vertices()}
    outcomes = []
    for steps in (4, 16, 64, 256, 1024):
        result = walk_exchange(
            g, leader, requests, phi=0.1, forward_steps=steps, seed=8
        )
        table.add_row(
            steps,
            len(result.requests_delivered),
            len(result.undelivered),
            result.success,
        )
        outcomes.append(result.success)
    record_table("E03.txt", table)
    # Monotone shape: long enough walks succeed, tiny ones do not.
    assert not outcomes[0]
    assert outcomes[-1]

    benchmark.pedantic(
        lambda: walk_exchange(
            g, leader, requests, phi=0.1, forward_steps=256, seed=8
        ),
        rounds=2,
        iterations=1,
    )
