"""E3 — Random-walk information gathering (Lemma 2.4).

Claims under test: every vertex's messages reach the high-degree
leader; per-round per-edge congestion stays O(log n); and the reverse
phase returns a distinct answer to every vertex.  The BFS-tree
exchange is the comparison point: fewer raw rounds, but congestion at
the leader's edges grows with the cluster size instead of log n.
"""

import math

import pytest

from repro.analysis import Table
from repro.decomposition import expander_decomposition
from repro.generators import delaunay_planar_graph, k_tree
from repro.routing import gather_topology

from _util import record_table, run_recorded_suite


def test_e03_walk_vs_tree_transport(benchmark):
    """The E03 grid (top-3 clusters x transport), as runner cells.

    Every cell recomputes — or, with caching on, rehydrates — the same
    shared decomposition of delaunay(200); Lemma 2.4's claims are then
    asserted over the per-cell result objects.
    """
    run = run_recorded_suite("E03", "E03.txt")
    assert len(run.results) == 6
    for cell in run.results:
        (rank, n_i, m_i, transport, rounds, eff_rounds,
         max_congestion, max_bits, success), = cell.rows
        assert success
        assert cell.extra["topology_complete"]
        if transport == "walk":
            # Lemma 2.4's congestion claim.
            congestion_log_bound = 12 * math.log2(cell.extra["network_n"])
            assert max_congestion <= congestion_log_bound

    g = delaunay_planar_graph(200, seed=31)
    dec = expander_decomposition(g, 0.9, phi=0.04, seed=0, enforce_budget=False)
    sub = g.subgraph(max(dec.clusters, key=len))
    benchmark.pedantic(
        lambda: gather_topology(sub, phi=0.05, seed=7, network_n=g.n),
        rounds=2,
        iterations=1,
    )


def test_e03_delivery_rate_vs_walk_length(benchmark):
    """Shorter walks fail detectably; the calibrated length succeeds."""
    from repro.routing import walk_exchange

    table = Table(
        "E3b: delivery vs forward walk length (k-tree cluster, n=80)",
        ["forward_steps", "delivered", "undelivered", "success"],
    )
    g = k_tree(80, 3, seed=32)
    leader = max(g.vertices(), key=g.degree)
    requests = {v: [(v, 1)] for v in g.vertices()}
    outcomes = []
    for steps in (4, 16, 64, 256, 1024):
        result = walk_exchange(
            g, leader, requests, phi=0.1, forward_steps=steps, seed=8
        )
        table.add_row(
            steps,
            len(result.requests_delivered),
            len(result.undelivered),
            result.success,
        )
        outcomes.append(result.success)
    record_table("E03.txt", table)
    # Monotone shape: long enough walks succeed, tiny ones do not.
    assert not outcomes[0]
    assert outcomes[-1]

    benchmark.pedantic(
        lambda: walk_exchange(
            g, leader, requests, phi=0.1, forward_steps=256, seed=8
        ),
        rounds=2,
        iterations=1,
    )
