"""Shared helpers for the benchmark harness.

Each experiment prints its series as a plain-text table (the paper,
being pure theory, has no tables of its own — see DESIGN.md section 2
for the experiment index) and also writes it under
``benchmarks/results/`` so EXPERIMENTS.md can quote the measured
numbers.

Experiments that have been converted to the cell model (E01, E03, E10)
run through :mod:`repro.runner`: the suite definition enumerates the
parameter grid, each cell executes independently, and the table here is
assembled from the per-cell result objects.  Two environment variables
let CI and local runs exercise the scaling path without changing the
tests:

* ``REPRO_BENCH_JOBS`` — worker processes for converted suites
  (default 1: in-process, exactly the historical serial execution);
* ``REPRO_BENCH_CACHE`` — set to ``1`` to memoize artifacts under
  ``benchmarks/.cache/``; benchmarks default to cache-off so the
  numbers they print are always honest recomputations.
"""

from __future__ import annotations

import os

from repro.analysis import Table
from repro.runner import SuiteRun, run_suite

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def results_path(filename: str) -> str:
    """Absolute path under ``benchmarks/results/``, parent dirs created.

    Centralizing directory creation means every experiment file — and
    any single test picked out of one — works on a fresh clone where
    ``benchmarks/results/`` does not exist yet (it is gitignored).
    """
    path = os.path.join(RESULTS_DIR, filename)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    return path


def record_table(filename: str, table: Table) -> None:
    """Print the table and persist it under benchmarks/results/."""
    rendered = table.render()
    print("\n" + rendered)
    with open(results_path(filename), "a") as handle:
        handle.write(rendered + "\n\n")


def reset_result(filename: str) -> None:
    """Truncate a result file at the start of its experiment."""
    with open(results_path(filename), "w"):
        pass


def bench_jobs() -> int:
    """Worker count for converted suites (``REPRO_BENCH_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


def bench_cache_enabled() -> bool:
    """Whether benchmark runs may use the artifact cache."""
    return os.environ.get("REPRO_BENCH_CACHE", "") == "1"


def run_recorded_suite(name: str, filename: str, reset: bool = True) -> SuiteRun:
    """Execute a converted suite and record its assembled table.

    The table is built from the per-cell :class:`repro.runner.CellResult`
    objects in grid order, so its bytes do not depend on the job count.
    """
    run = run_suite(
        name,
        jobs=bench_jobs(),
        use_cache=bench_cache_enabled(),
    )
    if reset:
        reset_result(filename)
    record_table(filename, run.table())
    return run
