"""Shared helpers for the benchmark harness.

Each experiment prints its series as a plain-text table (the paper,
being pure theory, has no tables of its own — see DESIGN.md section 2
for the experiment index) and also writes it under
``benchmarks/results/`` so EXPERIMENTS.md can quote the measured
numbers.
"""

from __future__ import annotations

import os

from repro.analysis import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_table(filename: str, table: Table) -> None:
    """Print the table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    rendered = table.render()
    print("\n" + rendered)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "a") as handle:
        handle.write(rendered + "\n\n")


def reset_result(filename: str) -> None:
    """Truncate a result file at the start of its experiment."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w"):
        pass
