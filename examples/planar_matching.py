"""Road-network matching: Theorem 3.2 end to end.

Scenario: a dispatch system on a road-like planar network (a Delaunay
triangulation models intersections) wants a near-maximum set of
disjoint ride pairings, computed *in the network* with small messages.

The pipeline is Section 3.2 verbatim: eliminate 2-stars and
3-double-stars so the optimum is Omega(n), partition with the
framework, solve each cluster exactly with the blossom algorithm at its
leader, and union the results.

Run:  python examples/planar_matching.py
"""

from repro import generators
from repro.analysis import Table
from repro.matching import (
    distributed_mcm_planar,
    max_cardinality_matching,
    maximal_matching,
)


def main() -> None:
    network = generators.delaunay_planar_graph(120, seed=42)
    print(f"road network: {network.n} intersections, {network.m} segments")

    epsilon = 0.25
    result, framework = distributed_mcm_planar(network, epsilon, seed=42)

    optimum = max_cardinality_matching(network)
    baseline = maximal_matching(network, seed=42)

    table = Table(
        "matching quality",
        ["algorithm", "pairs", "ratio vs optimum"],
    )
    table.add_row("exact blossom (centralized)", len(optimum), 1.0)
    table.add_row(
        f"framework (eps={epsilon})", result.size,
        result.size / len(optimum),
    )
    table.add_row(
        "random maximal matching", len(baseline),
        len(baseline) / len(optimum),
    )
    table.print()

    assert result.size >= (1 - epsilon) * len(optimum)
    print(
        f"\nguarantee met: {result.size} >= (1 - {epsilon}) * {len(optimum)}"
    )
    if framework is not None:
        print("CONGEST cost:", result.metrics().summary())
        print(f"clusters used: {len(framework.clusters)}")


if __name__ == "__main__":
    main()
