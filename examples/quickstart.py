"""Quickstart: the Theorem 2.6 framework in one page.

Builds a random planar network, partitions it into certified expander
clusters, gathers each cluster's topology to a high-degree leader over
simulated CONGEST random-walk routing, runs a toy sequential solver at
every leader, and reports what the execution cost in CONGEST terms.

Run:  python examples/quickstart.py
"""

from repro import generators, run_framework
from repro.analysis import Table


def eccentricity_solver(sub, leader, notes):
    """Any sequential algorithm can run at the leader; this one tells
    every vertex its distance to the cluster leader."""
    distances = sub.bfs_distances(leader)
    return {v: distances.get(v, -1) for v in sub.vertices()}


def main() -> None:
    network = generators.delaunay_planar_graph(150, seed=7)
    print(f"network: {network.n} vertices, {network.m} edges (planar)")

    result = run_framework(
        network,
        epsilon=0.9,       # inter-cluster edge budget
        phi=0.05,          # per-cluster conductance target
        solver=eccentricity_solver,
        seed=7,
    )

    table = Table(
        "clusters (Theorem 2.6 partition)",
        ["cluster", "size", "leader", "certified phi", "gather ok"],
    )
    for run in result.clusters:
        table.add_row(
            run.index, len(run.vertices), run.leader,
            run.certificate, run.gather.success,
        )
    table.print()

    print(
        f"\ninter-cluster edges: {result.inter_cluster_edges()} "
        f"(<= {result.epsilon} * min(n, m) by Theorem 2.6)"
    )
    print("CONGEST execution:", result.metrics.summary())
    sample = sorted(result.answers.items())[:5]
    print("sample answers (vertex -> distance to its leader):", sample)


if __name__ == "__main__":
    main()
