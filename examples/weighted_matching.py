"""Weighted matching under adversarial weights (Theorem 1.1).

Scenario: a marketplace on a treewidth-bounded overlay (a partial
3-tree) where edge weights span three orders of magnitude — the regime
the paper singles out as hard, because an expander decomposition that
cuts "few" edges can still cut most of the *weight*.  The iterated
framework re-optimizes across randomized cluster boundaries so heavy
edges stuck on a boundary get reconsidered.

Run:  python examples/weighted_matching.py
"""

from repro import generators
from repro.analysis import Table
from repro.matching import (
    distributed_mwm,
    greedy_weight_matching,
    matching_weight,
    max_weight_matching,
)


def main() -> None:
    overlay = generators.k_tree(80, 3, seed=9)
    network = generators.random_integer_weights(overlay, 1000, seed=9)
    print(
        f"overlay: {network.n} nodes, {network.m} edges, "
        f"weights 1..1000 (3-tree, K5-minor-free)"
    )

    epsilon = 0.25
    optimum = matching_weight(network, max_weight_matching(network))
    greedy = matching_weight(network, greedy_weight_matching(network))

    table = Table(
        "weighted matching quality",
        ["algorithm", "weight", "ratio vs optimum"],
    )
    table.add_row("exact weighted blossom", optimum, 1.0)
    for iterations in (1, 3, 5):
        result = distributed_mwm(
            network, epsilon, iterations=iterations, seed=9
        )
        table.add_row(
            f"framework x{iterations} iterations", result.weight,
            result.weight / optimum,
        )
    table.add_row("greedy (1/2-approx)", greedy, greedy / optimum)
    table.print()

    final = distributed_mwm(network, epsilon, iterations=5, seed=9)
    assert final.weight >= (1 - epsilon) * optimum
    print(
        f"\nguarantee met: {final.weight:.0f} >= "
        f"(1 - {epsilon}) * {optimum:.0f}"
    )
    print("CONGEST cost (all iterations):", final.metrics().summary())


if __name__ == "__main__":
    main()
