"""Community detection as correlation clustering (Theorem 1.3).

Scenario: a sensor network where links are labeled "agree" (+) or
"disagree" (-) by a pairwise classifier, with ground-truth communities
and classifier noise.  The goal is the agreement-maximizing clustering,
computed distributedly.

Run:  python examples/correlation_clustering.py
"""

from collections import Counter

from repro import generators
from repro.analysis import Table
from repro.correlation import (
    agreement_score,
    best_trivial_clustering,
    distributed_correlation_clustering,
)


def main() -> None:
    network = generators.delaunay_planar_graph(100, seed=5)
    signs, truth = generators.planted_signs(
        network, communities=3, noise=0.12, seed=5
    )
    print(
        f"network: {network.n} sensors, {network.m} links, "
        f"3 planted communities, 12% label noise"
    )

    epsilon = 0.3
    result = distributed_correlation_clustering(
        network, signs, epsilon, seed=5
    )

    _, trivial = best_trivial_clustering(network, signs)
    truth_score = agreement_score(network, signs, truth)

    table = Table(
        "agreement scores (higher is better)",
        ["clustering", "score", "fraction of |E|"],
    )
    table.add_row("planted ground truth", truth_score, truth_score / network.m)
    table.add_row(
        f"framework (eps={epsilon})", result.score, result.score / network.m
    )
    table.add_row("best trivial baseline", trivial, trivial / network.m)
    table.print()

    sizes = Counter(result.labels.values())
    print(f"\nclusters found: {len(sizes)}; largest: {max(sizes.values())}")
    print("CONGEST cost:", result.framework.metrics.summary())
    # Theorem 1.3 guarantee, chargeable against gamma(G) >= |E|/2.
    assert result.score >= (1 - epsilon) * network.m / 2


if __name__ == "__main__":
    main()
