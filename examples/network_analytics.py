"""In-network analytics: triangles, domination, and structure checks.

Scenario: a deployed sensor mesh wants to compute, entirely in-network,
a bundle of structural analytics — its triangle census (local clustering
backbone), a small dominating set (coordinator placement), and a
low-diameter regionalization — all through the same
expander-decomposition framework.

Run:  python examples/network_analytics.py
"""

from repro import generators, theorem_1_5_ldd
from repro.analysis import Table
from repro.dominating_set import distributed_mds, greedy_mds, is_dominating_set
from repro.subgraphs import distributed_triangle_listing, list_triangles


def main() -> None:
    mesh = generators.triangulated_grid_graph(9, 9)
    print(f"sensor mesh: {mesh.n} nodes, {mesh.m} links")

    table = Table("in-network analytics", ["task", "result", "note"])

    # 1. Triangle census.
    found, framework, cut_metrics = distributed_triangle_listing(
        mesh, epsilon=0.9, phi=0.05, seed=1
    )
    expected = list_triangles(mesh)
    table.add_row(
        "triangle census",
        f"{len(found)} triangles",
        "exact" if found == expected else "INEXACT",
    )
    assert found == expected

    # 2. Coordinator placement (dominating set).
    mds = distributed_mds(mesh, epsilon=0.3, seed=2)
    assert is_dominating_set(mesh, mds.dominating_set)
    greedy = len(greedy_mds(mesh))
    table.add_row(
        "coordinators (MDS)",
        f"{mds.size} nodes",
        f"greedy baseline: {greedy}",
    )

    # 3. Regionalization (Theorem 1.5 LDD).
    ldd = theorem_1_5_ldd(mesh, 0.35, seed=3)
    table.add_row(
        "regions (LDD)",
        f"{len(ldd.clusters)} regions",
        f"max diameter {ldd.max_diameter()}, "
        f"cut {ldd.cut_fraction():.1%} of links",
    )

    table.print()
    print(
        f"\ntriangle phase handled "
        f"{len(framework.decomposition.cut_edges)} cut edges in "
        f"{cut_metrics.rounds} extra rounds"
    )


if __name__ == "__main__":
    main()
