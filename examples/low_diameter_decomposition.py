"""Optimal low-diameter decomposition (Theorem 1.5).

Scenario: a planar mesh wants to self-organize into regions of small
hop-diameter (for local coordination / aggregation), cutting as few
links as possible.  Theorem 1.5 composes the expander-decomposition
framework with a sequential LDD run at each leader, reaching the
optimal D = O(1/epsilon) — compare with generic ball carving's
O(log m / epsilon).

Run:  python examples/low_diameter_decomposition.py
"""

from repro import generators, theorem_1_5_ldd, verify_ldd
from repro.analysis import Table
from repro.decomposition import ball_carving_ldd


def main() -> None:
    mesh = generators.triangulated_grid_graph(13, 13)
    print(f"mesh: {mesh.n} nodes, {mesh.m} links")

    table = Table(
        "low-diameter decompositions",
        ["epsilon", "algorithm", "regions", "cut fraction",
         "max region diameter", "diameter * epsilon"],
    )
    for epsilon in (0.2, 0.35, 0.5):
        for name, run in (
            ("Theorem 1.5", lambda: theorem_1_5_ldd(mesh, epsilon, seed=1)),
            ("ball carving", lambda: ball_carving_ldd(mesh, epsilon, seed=1)),
        ):
            ldd = run()
            report = verify_ldd(ldd)
            table.add_row(
                epsilon, name, int(report["clusters"]),
                report["cut_fraction"], int(report["max_diameter"]),
                report["max_diameter"] * epsilon,
            )
    table.print()
    print(
        "\nshape check: for Theorem 1.5 the 'diameter * epsilon' column "
        "stays O(1) as epsilon shrinks — the optimal trade-off; a cycle "
        "network shows no algorithm can do better (see benchmarks/E09)."
    )


if __name__ == "__main__":
    main()
