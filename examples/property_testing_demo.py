"""Distributed planarity testing (Theorem 1.4).

Scenario: a mesh network believes its topology is planar (it was
deployed on a surface); nodes want to verify this in-network, with
small messages, and localize the violation if one exists.  We test a
healthy planar deployment and then one corrupted with K_6 "shortcut
bundles" that make it epsilon-far from planar.

Run:  python examples/property_testing_demo.py
"""

from repro import generators
from repro.analysis import Table
from repro.graph import Graph
from repro.property_testing import PLANARITY, distributed_property_test


def corrupted_deployment(seed: int) -> Graph:
    """Planar bulk plus disjoint K_6 'shortcut bundles' (each needs an
    edge change to become planar => epsilon-far for small epsilon)."""
    g = generators.delaunay_planar_graph(90, seed=seed)
    offset = 10_000
    for island in range(8):
        base = offset + island * 6
        for i in range(6):
            for j in range(i + 1, 6):
                g.add_edge(base + i, base + j)
    return g


def main() -> None:
    table = Table(
        "planarity tester verdicts",
        ["deployment", "n", "m", "verdict", "rejecting vertices"],
    )

    healthy = generators.delaunay_planar_graph(120, seed=3)
    result = distributed_property_test(healthy, PLANARITY, epsilon=0.1, seed=3)
    rejecters = [v for v, ok in result.verdicts.items() if not ok]
    table.add_row(
        "healthy (planar)", healthy.n, healthy.m,
        "Accept" if result.accepted else "Reject", len(rejecters),
    )
    assert result.accepted  # one-sided error: planar always accepts

    corrupted = corrupted_deployment(seed=3)
    result = distributed_property_test(
        corrupted, PLANARITY, epsilon=0.05, seed=3
    )
    rejecters = [v for v, ok in result.verdicts.items() if not ok]
    table.add_row(
        "corrupted (+K6 bundles)", corrupted.n, corrupted.m,
        "Accept" if result.accepted else "Reject", len(rejecters),
    )
    assert not result.accepted

    table.print()
    localized = [v for v in rejecters if v >= 10_000]
    print(
        f"\nrejection localized to the corrupted bundles: "
        f"{len(localized)}/{len(rejecters)} rejecting vertices are bundle nodes"
    )
    for index, verdict in sorted(result.cluster_verdicts.items()):
        if verdict.startswith("reject"):
            print(f"  cluster {index}: {verdict}")


if __name__ == "__main__":
    main()
